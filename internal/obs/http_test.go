package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs/span"
)

// TestInstrumentHTTP: the middleware must count requests by route and status,
// observe latency, account response bytes, track in-flight requests back to
// zero, and emit one structured access-log record per request.
func TestInstrumentHTTP(t *testing.T) {
	reg := NewRegistry()
	var buf strings.Builder
	logger := NewLogger(&buf, nil)
	h := InstrumentHTTP(reg, logger, nil, "/v1/thing", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fail") != "" {
			http.Error(w, "boom", http.StatusBadRequest)
			return
		}
		w.Write([]byte("hello"))
	}))

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/thing", nil))
		if rec.Code != 200 || rec.Body.String() != "hello" {
			t.Fatalf("request %d: code=%d body=%q", i, rec.Code, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/thing?fail=1", nil))
	if rec.Code != 400 {
		t.Fatalf("fail request: code=%d", rec.Code)
	}

	snap := reg.Snapshot()
	if got := snap[`http_requests_total{route="/v1/thing",code="200"}`]; got != 3 {
		t.Errorf("200 count = %g, want 3", got)
	}
	if got := snap[`http_requests_total{route="/v1/thing",code="400"}`]; got != 1 {
		t.Errorf("400 count = %g, want 1", got)
	}
	if got := snap[`http_request_seconds{route="/v1/thing"}_count`]; got != 4 {
		t.Errorf("latency observations = %g, want 4", got)
	}
	if got := snap[`http_response_bytes_total{route="/v1/thing"}`]; got != 3*5+5 { // 3×"hello" + "boom\n"
		t.Errorf("response bytes = %g, want 20", got)
	}
	if got := snap["http_in_flight"]; got != 0 {
		t.Errorf("in-flight after drain = %g, want 0", got)
	}

	// Access log: one valid JSON object per request with the request fields.
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	lines := 0
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad access-log line %q: %v", sc.Text(), err)
		}
		if rec["msg"] != "http_request" || rec["route"] != "/v1/thing" || rec["method"] != "GET" {
			t.Errorf("unexpected record %v", rec)
		}
		if _, ok := rec["status"].(float64); !ok {
			t.Errorf("record missing numeric status: %v", rec)
		}
		if _, ok := rec["seconds"].(float64); !ok {
			t.Errorf("record missing numeric seconds: %v", rec)
		}
		lines++
	}
	if lines != 4 {
		t.Errorf("access log has %d lines, want 4", lines)
	}
}

// TestInstrumentHTTPConcurrent drives the middleware from many goroutines —
// the registry, in-flight gauge and structured logger must all be
// race-clean (slog handlers serialize their writes internally).
func TestInstrumentHTTPConcurrent(t *testing.T) {
	reg := NewRegistry()
	var buf strings.Builder
	logger := NewLogger(&buf, nil)
	h := InstrumentHTTP(reg, logger, nil, "/x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
			}
		}()
	}
	wg.Wait()
	if got := reg.Snapshot()[`http_requests_total{route="/x",code="204"}`]; got != 400 {
		t.Fatalf("request count = %g, want 400", got)
	}
	if got := strings.Count(buf.String(), "\n"); got != 400 {
		t.Fatalf("access log has %d lines, want 400", got)
	}
}

// TestInstrumentHTTPTracing: with a tracer the middleware must mint a fresh
// trace (no incoming header), join an incoming traceparent, expose the span
// in the request context, echo traceparent on the response, and land the
// finished span in the store with the http.* attributes.
func TestInstrumentHTTPTracing(t *testing.T) {
	reg := NewRegistry()
	tracer := span.NewTracer(0)
	var inCtx *span.Span
	h := InstrumentHTTP(reg, nil, tracer, "/v1/thing", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inCtx = span.FromContext(r.Context())
		w.Write([]byte("ok"))
	}))

	// No incoming header: a fresh trace is minted.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/thing", nil))
	tp := rec.Header().Get("traceparent")
	if tp == "" {
		t.Fatal("response missing traceparent")
	}
	tid, sid, err := span.ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", tp, err)
	}
	if inCtx == nil || inCtx.SpanID() != sid {
		t.Fatal("request-context span does not match response traceparent")
	}
	spans := tracer.Store().Trace(tid)
	if len(spans) != 1 {
		t.Fatalf("trace has %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "HTTP /v1/thing" || !sp.ParentID.IsZero() {
		t.Fatalf("span = %+v", sp)
	}
	attrs := map[string]any{}
	for _, a := range sp.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["http.method"] != "GET" || attrs["http.route"] != "/v1/thing" ||
		attrs["http.status_code"] != 200 || attrs["http.response_bytes"] != int64(2) {
		t.Fatalf("span attrs = %v", attrs)
	}

	// Incoming traceparent: the request joins the caller's trace as a child.
	req := httptest.NewRequest("GET", "/v1/thing", nil)
	req.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	tid2, _, err := span.ParseTraceparent(rec2.Header().Get("traceparent"))
	if err != nil {
		t.Fatal(err)
	}
	if tid2.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("joined trace ID = %s", tid2)
	}
	joined := tracer.Store().Trace(tid2)
	if len(joined) != 1 || joined[0].ParentID.String() != "00f067aa0ba902b7" {
		t.Fatalf("joined span = %+v", joined)
	}
}

// TestInstrumentHTTPLogCorrelation: with both a tracer and a logger, the
// access-log record must carry the trace_id/span_id of the request span
// echoed in the traceparent response header.
func TestInstrumentHTTPLogCorrelation(t *testing.T) {
	reg := NewRegistry()
	tracer := span.NewTracer(0)
	var buf strings.Builder
	logger := NewLogger(&buf, nil)
	h := InstrumentHTTP(reg, logger, tracer, "/y", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/y", nil))
	tid, sid, err := span.ParseTraceparent(rec.Header().Get("traceparent"))
	if err != nil {
		t.Fatal(err)
	}
	var logged map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &logged); err != nil {
		t.Fatalf("bad access-log line %q: %v", buf.String(), err)
	}
	if logged["trace_id"] != tid.String() || logged["span_id"] != sid.String() {
		t.Fatalf("log correlation = trace_id=%v span_id=%v, want %s/%s",
			logged["trace_id"], logged["span_id"], tid, sid)
	}
}
