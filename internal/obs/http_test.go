package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs/span"
)

// TestInstrumentHTTP: the middleware must count requests by route and status,
// observe latency, account response bytes and track in-flight requests back
// to zero.
func TestInstrumentHTTP(t *testing.T) {
	reg := NewRegistry()
	var buf strings.Builder
	logger := NewAccessLogger(&buf)
	h := InstrumentHTTP(reg, logger, nil, "/v1/thing", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fail") != "" {
			http.Error(w, "boom", http.StatusBadRequest)
			return
		}
		w.Write([]byte("hello"))
	}))

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/thing", nil))
		if rec.Code != 200 || rec.Body.String() != "hello" {
			t.Fatalf("request %d: code=%d body=%q", i, rec.Code, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/thing?fail=1", nil))
	if rec.Code != 400 {
		t.Fatalf("fail request: code=%d", rec.Code)
	}

	snap := reg.Snapshot()
	if got := snap[`http_requests_total{route="/v1/thing",code="200"}`]; got != 3 {
		t.Errorf("200 count = %g, want 3", got)
	}
	if got := snap[`http_requests_total{route="/v1/thing",code="400"}`]; got != 1 {
		t.Errorf("400 count = %g, want 1", got)
	}
	if got := snap[`http_request_seconds{route="/v1/thing"}_count`]; got != 4 {
		t.Errorf("latency observations = %g, want 4", got)
	}
	if got := snap[`http_response_bytes_total{route="/v1/thing"}`]; got != 3*5+5 { // 3×"hello" + "boom\n"
		t.Errorf("response bytes = %g, want 20", got)
	}
	if got := snap["http_in_flight"]; got != 0 {
		t.Errorf("in-flight after drain = %g, want 0", got)
	}

	// Access log: one valid JSON line per request with route and status.
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	lines := 0
	for sc.Scan() {
		var rec AccessRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad access-log line %q: %v", sc.Text(), err)
		}
		if rec.Route != "/v1/thing" || rec.Method != "GET" {
			t.Errorf("unexpected record %+v", rec)
		}
		lines++
	}
	if lines != 4 {
		t.Errorf("access log has %d lines, want 4", lines)
	}
	if err := logger.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestInstrumentHTTPConcurrent drives the middleware from many goroutines —
// the registry, in-flight gauge and access logger must all be race-clean.
func TestInstrumentHTTPConcurrent(t *testing.T) {
	reg := NewRegistry()
	var buf strings.Builder
	var bufMu sync.Mutex
	logger := NewAccessLogger(writerFunc(func(p []byte) (int, error) {
		bufMu.Lock()
		defer bufMu.Unlock()
		return buf.Write(p)
	}))
	h := InstrumentHTTP(reg, logger, nil, "/x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
			}
		}()
	}
	wg.Wait()
	if got := reg.Snapshot()[`http_requests_total{route="/x",code="204"}`]; got != 400 {
		t.Fatalf("request count = %g, want 400", got)
	}
	if err := logger.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestInstrumentHTTPTracing: with a tracer the middleware must mint a fresh
// trace (no incoming header), join an incoming traceparent, expose the span
// in the request context, echo traceparent on the response, and land the
// finished span in the store with the http.* attributes.
func TestInstrumentHTTPTracing(t *testing.T) {
	reg := NewRegistry()
	tracer := span.NewTracer(0)
	var inCtx *span.Span
	h := InstrumentHTTP(reg, nil, tracer, "/v1/thing", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inCtx = span.FromContext(r.Context())
		w.Write([]byte("ok"))
	}))

	// No incoming header: a fresh trace is minted.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/thing", nil))
	tp := rec.Header().Get("traceparent")
	if tp == "" {
		t.Fatal("response missing traceparent")
	}
	tid, sid, err := span.ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", tp, err)
	}
	if inCtx == nil || inCtx.SpanID() != sid {
		t.Fatal("request-context span does not match response traceparent")
	}
	spans := tracer.Store().Trace(tid)
	if len(spans) != 1 {
		t.Fatalf("trace has %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "HTTP /v1/thing" || !sp.ParentID.IsZero() {
		t.Fatalf("span = %+v", sp)
	}
	attrs := map[string]any{}
	for _, a := range sp.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["http.method"] != "GET" || attrs["http.route"] != "/v1/thing" ||
		attrs["http.status_code"] != 200 || attrs["http.response_bytes"] != int64(2) {
		t.Fatalf("span attrs = %v", attrs)
	}

	// Incoming traceparent: the request joins the caller's trace as a child.
	req := httptest.NewRequest("GET", "/v1/thing", nil)
	req.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	tid2, _, err := span.ParseTraceparent(rec2.Header().Get("traceparent"))
	if err != nil {
		t.Fatal(err)
	}
	if tid2.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("joined trace ID = %s", tid2)
	}
	joined := tracer.Store().Trace(tid2)
	if len(joined) != 1 || joined[0].ParentID.String() != "00f067aa0ba902b7" {
		t.Fatalf("joined span = %+v", joined)
	}
}

// TestNilAccessLogger: a nil logger must be a safe no-op.
func TestNilAccessLogger(t *testing.T) {
	var l *AccessLogger
	l.Log(AccessRecord{Path: "/"})
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
