package obs

import (
	"fmt"
	"testing"
)

// TestBrokerFanout: every subscriber receives published events in order, with
// broker-global sequence numbers.
func TestBrokerFanout(t *testing.T) {
	b := NewBroker()
	s1 := b.Subscribe(8, nil)
	s2 := b.Subscribe(8, nil)
	defer s1.Close()
	defer s2.Close()
	for i := 0; i < 3; i++ {
		b.Publish(StreamEvent{Kind: "job_progress", Job: "job-1"})
	}
	for _, s := range []*Sub{s1, s2} {
		for i := 0; i < 3; i++ {
			ev := <-s.C
			if ev.Seq != uint64(i+1) || ev.Kind != "job_progress" {
				t.Fatalf("event %d = %+v", i, ev)
			}
			if ev.Time.IsZero() {
				t.Fatal("event time not stamped")
			}
		}
	}
}

// TestBrokerFilter: a filtered subscription only sees accepted events and the
// kept events preserve their global sequence numbers (gaps included).
func TestBrokerFilter(t *testing.T) {
	b := NewBroker()
	s := b.Subscribe(8, func(ev StreamEvent) bool { return ev.Job == "job-2" })
	defer s.Close()
	b.Publish(StreamEvent{Kind: "x", Job: "job-1"})
	b.Publish(StreamEvent{Kind: "x", Job: "job-2"})
	b.Publish(StreamEvent{Kind: "x", Job: "job-1"})
	b.Publish(StreamEvent{Kind: "x", Job: "job-2"})
	if ev := <-s.C; ev.Seq != 2 {
		t.Fatalf("first kept seq = %d, want 2", ev.Seq)
	}
	if ev := <-s.C; ev.Seq != 4 {
		t.Fatalf("second kept seq = %d, want 4", ev.Seq)
	}
	if len(s.C) != 0 {
		t.Fatal("filtered events delivered")
	}
}

// TestBrokerSlowConsumer: a full subscriber buffer drops (and counts) rather
// than blocking Publish — the policy that lets one stuck SSE client coexist
// with the simulation hot path.
func TestBrokerSlowConsumer(t *testing.T) {
	reg := NewRegistry()
	b := NewBroker()
	b.Metrics(reg)
	slow := b.Subscribe(2, nil)
	defer slow.Close()
	for i := 0; i < 5; i++ {
		b.Publish(StreamEvent{Kind: "tick"}) // never blocks
	}
	if got := slow.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	snap := reg.Snapshot()
	if got := snap["sse_events_published_total"]; got != 5 {
		t.Errorf("published = %g, want 5", got)
	}
	if got := snap["sse_events_dropped_total"]; got != 3 {
		t.Errorf("dropped metric = %g, want 3", got)
	}
	if got := snap["sse_subscribers"]; got != 1 {
		t.Errorf("subscribers = %g, want 1", got)
	}
	// Buffered events stay readable after Close; Close is idempotent.
	slow.Close()
	slow.Close()
	if got := reg.Snapshot()["sse_subscribers"]; got != 0 {
		t.Errorf("subscribers after close = %g, want 0", got)
	}
	if ev := <-slow.C; ev.Seq != 1 {
		t.Fatalf("buffered event lost: %+v", ev)
	}
}

// TestNilBroker: publishing to a nil broker must be a safe no-op so event
// sources never branch on streaming being enabled.
func TestNilBroker(t *testing.T) {
	var b *Broker
	b.Publish(StreamEvent{Kind: "x"})
	b.Metrics(NewRegistry())
	o := &BrokerObserver{B: b, Job: "j"}
	o.OnClockEdge(ClockEdge{T: 1})
	o.OnPhaseChange(PhaseChange{T: 1})
	o.OnAlert(Alert{T: 1})
}

// TestBrokerObserver: semantic sim events must come out as tagged stream
// events.
func TestBrokerObserver(t *testing.T) {
	b := NewBroker()
	s := b.Subscribe(8, nil)
	defer s.Close()
	o := &BrokerObserver{B: b, Job: "job-7"}
	o.OnClockEdge(ClockEdge{T: 1.5, Species: "c.CR", Rising: true, Level: 0.5})
	o.OnPhaseChange(PhaseChange{T: 2.5, From: "c.CR", To: "c.CG"})
	o.OnAlert(Alert{T: 3.5, Rule: "phase_overlap", Subject: "c.CR+c.CG", Value: 2, Limit: 1})
	want := []struct {
		kind string
		key  string
		val  any
	}{
		{"clock_edge", "species", "c.CR"},
		{"phase_change", "to", "c.CG"},
		{"alert", "rule", "phase_overlap"},
	}
	for i, w := range want {
		ev := <-s.C
		if ev.Kind != w.kind || ev.Job != "job-7" {
			t.Fatalf("event %d = %+v, want kind %s", i, ev, w.kind)
		}
		if got := fmt.Sprint(ev.Data[w.key]); got != fmt.Sprint(w.val) {
			t.Errorf("%s: %s = %v, want %v", w.kind, w.key, got, w.val)
		}
	}
}
