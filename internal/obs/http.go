package obs

import (
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs/span"
)

// HTTPTimeBuckets spans request latencies from 100µs to 100s with a 1-2-5
// subdivision — wide enough for both a cached lookup and a long simulation.
func HTTPTimeBuckets() []float64 {
	var b []float64
	for e := -4; e <= 2; e++ {
		p := math.Pow(10, float64(e))
		b = append(b, p, 2*p, 5*p)
	}
	return b
}

// statusWriter captures the response status and body size on their way out.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports flushing, so
// instrumented handlers can still stream.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// InstrumentHTTP wraps an http.Handler with the standard server metric
// families, labelled by the given route pattern (use the mux pattern, not the
// raw path, to keep label cardinality bounded):
//
//	http_requests_total{route=,code=}   served requests by status code
//	http_request_seconds{route=}        latency histogram
//	http_response_bytes_total{route=}   body bytes written
//	http_in_flight                      currently executing requests
//
// log, when non-nil, receives one structured "http_request" record per
// served request (method, path, route, status, bytes, seconds, remote).
// Logged through the request context, so a span-correlating logger (see
// NewLogger) stamps each record with the request's trace_id/span_id.
//
// tracer, when non-nil, makes the middleware the trace entry point: an
// incoming W3C `traceparent` header is extracted (joining the caller's
// trace) or a fresh trace is minted, the request span is placed in the
// request context for handlers, batch jobs and simulators to parent their
// own spans under, and the response carries the span's `traceparent` so
// clients can look their request up in /debug/tracez.
func InstrumentHTTP(reg *Registry, log *slog.Logger, tracer *span.Tracer, route string, next http.Handler) http.Handler {
	latency := reg.Histogram(Label("http_request_seconds", "route", route), HTTPTimeBuckets())
	bytes := reg.Counter(Label("http_response_bytes_total", "route", route))
	inflight := reg.Gauge("http_in_flight")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w}

		var sp *span.Span
		if tracer != nil {
			if tid, sid, err := span.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
				sp = tracer.Join(tid, sid, "HTTP "+route)
			} else {
				sp = tracer.Root("HTTP " + route)
			}
			sp.SetAttr("http.method", r.Method)
			sp.SetAttr("http.route", route)
			sp.SetAttr("http.target", r.URL.Path)
			w.Header().Set("traceparent", sp.Traceparent())
			r = r.WithContext(span.NewContext(r.Context(), sp))
		}

		defer func() {
			inflight.Add(-1)
			if sw.status == 0 {
				// Handler wrote nothing: net/http sends 200 on return.
				sw.status = http.StatusOK
			}
			el := time.Since(start).Seconds()
			latency.Observe(el)
			bytes.Add(float64(sw.bytes))
			reg.Counter(Label("http_requests_total", "route", route,
				"code", strconv.Itoa(sw.status))).Inc()
			sp.SetAttr("http.status_code", sw.status)
			sp.SetAttr("http.response_bytes", sw.bytes)
			sp.End()
			if log != nil {
				log.LogAttrs(r.Context(), slog.LevelInfo, "http_request",
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.String("route", route),
					slog.Int("status", sw.status),
					slog.Int64("bytes", sw.bytes),
					slog.Float64("seconds", el),
					slog.String("remote", r.RemoteAddr),
				)
			}
		}()
		next.ServeHTTP(sw, r)
	})
}
