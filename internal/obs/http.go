package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs/span"
)

// HTTPTimeBuckets spans request latencies from 100µs to 100s with a 1-2-5
// subdivision — wide enough for both a cached lookup and a long simulation.
func HTTPTimeBuckets() []float64 {
	var b []float64
	for e := -4; e <= 2; e++ {
		p := math.Pow(10, float64(e))
		b = append(b, p, 2*p, 5*p)
	}
	return b
}

// AccessRecord is one served HTTP request, as logged by AccessLogger.
type AccessRecord struct {
	Time    string  `json:"time"` // RFC 3339, UTC
	Method  string  `json:"method"`
	Path    string  `json:"path"`
	Route   string  `json:"route"` // instrumented route pattern, not the raw path
	Status  int     `json:"status"`
	Bytes   int64   `json:"bytes"`
	Seconds float64 `json:"seconds"`
	Remote  string  `json:"remote,omitempty"`
}

// AccessLogger writes one JSON object per served request to W, in the same
// line-oriented spirit as the JSONL event sink. It is safe for concurrent
// use; a nil *AccessLogger is a no-op, so callers can thread an optional
// logger without nil checks at every site.
type AccessLogger struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewAccessLogger returns a logger writing JSON lines to w.
func NewAccessLogger(w io.Writer) *AccessLogger { return &AccessLogger{w: w} }

// Log writes one record. Encoding or write errors are retained (first wins)
// and reported by Err; logging never fails a request.
func (l *AccessLogger) Log(rec AccessRecord) {
	if l == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err == nil {
		b = append(b, '\n')
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		if l.err == nil {
			l.err = err
		}
		return
	}
	if _, werr := l.w.Write(b); werr != nil && l.err == nil {
		l.err = werr
	}
}

// Err returns the first error encountered while logging, if any.
func (l *AccessLogger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// statusWriter captures the response status and body size on their way out.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports flushing, so
// instrumented handlers can still stream.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// InstrumentHTTP wraps an http.Handler with the standard server metric
// families, labelled by the given route pattern (use the mux pattern, not the
// raw path, to keep label cardinality bounded):
//
//	http_requests_total{route=,code=}   served requests by status code
//	http_request_seconds{route=}        latency histogram
//	http_response_bytes_total{route=}   body bytes written
//	http_in_flight                      currently executing requests
//
// log, when non-nil, additionally receives one AccessRecord per request.
//
// tracer, when non-nil, makes the middleware the trace entry point: an
// incoming W3C `traceparent` header is extracted (joining the caller's
// trace) or a fresh trace is minted, the request span is placed in the
// request context for handlers, batch jobs and simulators to parent their
// own spans under, and the response carries the span's `traceparent` so
// clients can look their request up in /debug/tracez.
func InstrumentHTTP(reg *Registry, log *AccessLogger, tracer *span.Tracer, route string, next http.Handler) http.Handler {
	latency := reg.Histogram(Label("http_request_seconds", "route", route), HTTPTimeBuckets())
	bytes := reg.Counter(Label("http_response_bytes_total", "route", route))
	inflight := reg.Gauge("http_in_flight")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w}

		var sp *span.Span
		if tracer != nil {
			if tid, sid, err := span.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
				sp = tracer.Join(tid, sid, "HTTP "+route)
			} else {
				sp = tracer.Root("HTTP " + route)
			}
			sp.SetAttr("http.method", r.Method)
			sp.SetAttr("http.route", route)
			sp.SetAttr("http.target", r.URL.Path)
			w.Header().Set("traceparent", sp.Traceparent())
			r = r.WithContext(span.NewContext(r.Context(), sp))
		}

		defer func() {
			inflight.Add(-1)
			if sw.status == 0 {
				// Handler wrote nothing: net/http sends 200 on return.
				sw.status = http.StatusOK
			}
			el := time.Since(start).Seconds()
			latency.Observe(el)
			bytes.Add(float64(sw.bytes))
			reg.Counter(Label("http_requests_total", "route", route,
				"code", strconv.Itoa(sw.status))).Inc()
			sp.SetAttr("http.status_code", sw.status)
			sp.SetAttr("http.response_bytes", sw.bytes)
			sp.End()
			log.Log(AccessRecord{
				Time:    start.UTC().Format(time.RFC3339Nano),
				Method:  r.Method,
				Path:    r.URL.Path,
				Route:   route,
				Status:  sw.status,
				Bytes:   sw.bytes,
				Seconds: el,
				Remote:  r.RemoteAddr,
			})
		}()
		next.ServeHTTP(sw, r)
	})
}
