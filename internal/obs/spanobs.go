package obs

import (
	"repro/internal/obs/span"
)

// SpanObserver adapts a span.Span into an Observer: semantic simulation
// events (clock edges, phase changes, alerts) become span events, and the
// run's closing totals (steps, wall seconds, error) become span attributes —
// so a single exported trace shows not just that a sim ran but what its
// clockwork did. High-frequency step/firing events are not recorded (the
// span caps its event list anyway; JSONL is the lossless channel).
//
// It keeps no state of its own; sharing rules follow the underlying Span,
// which is safe for concurrent use.
type SpanObserver struct {
	Base
	S *span.Span
}

// OnClockEdge records the edge as a span event.
func (o *SpanObserver) OnClockEdge(e ClockEdge) {
	dir := "fall"
	if e.Rising {
		dir = "rise"
	}
	o.S.AddEvent("clock_edge",
		span.Attr{Key: "t", Value: e.T},
		span.Attr{Key: "species", Value: e.Species},
		span.Attr{Key: "dir", Value: dir})
}

// OnPhaseChange records the transition as a span event.
func (o *SpanObserver) OnPhaseChange(e PhaseChange) {
	o.S.AddEvent("phase_change",
		span.Attr{Key: "t", Value: e.T},
		span.Attr{Key: "from", Value: e.From},
		span.Attr{Key: "to", Value: e.To})
}

// OnAlert records the health alert as a span event.
func (o *SpanObserver) OnAlert(e Alert) {
	o.S.AddEvent("alert",
		span.Attr{Key: "t", Value: e.T},
		span.Attr{Key: "rule", Value: e.Rule},
		span.Attr{Key: "subject", Value: e.Subject},
		span.Attr{Key: "value", Value: e.Value},
		span.Attr{Key: "limit", Value: e.Limit})
}

// OnSimEnd stamps the run's totals — and, for stochastic runs, the kernel
// hot-path counters — onto the span. Zero counters are skipped so ODE spans
// stay free of selector noise.
func (o *SpanObserver) OnSimEnd(e SimEnd) {
	o.S.SetAttr("sim.steps", e.Steps)
	o.S.SetAttr("sim.t_reached", e.T)
	o.S.SetAttr("sim.wall_seconds", e.WallSeconds)
	if od := e.ODE; !od.IsZero() {
		o.S.SetAttr("ode.solver", od.Solver)
		switches := 0
		if od.Switched {
			switches = 1
			o.S.SetAttr("ode.switch_t", od.SwitchT)
		}
		o.S.SetAttr("ode.switches", switches)
		if od.StiffSteps > 0 {
			o.S.SetAttr("ode.stiff_steps", od.StiffSteps)
			o.S.SetAttr("ode.jac_evals", od.JacEvals)
			o.S.SetAttr("ode.factorizations", od.Factorizations)
		}
	}
	k := e.Kernel
	if k.IsZero() {
		return
	}
	if k.FenwickSelects > 0 {
		o.S.SetAttr("kernel.selects_fenwick", int64(k.FenwickSelects))
	}
	if k.LinearSelects > 0 {
		o.S.SetAttr("kernel.selects_linear", int64(k.LinearSelects))
	}
	if k.ExactRecomputes > 0 {
		o.S.SetAttr("kernel.exact_recomputes", int64(k.ExactRecomputes))
	}
	if k.LeapRejections > 0 {
		o.S.SetAttr("kernel.leap_rejections", int64(k.LeapRejections))
	}
	switch {
	case k.TightLoops > 0:
		o.S.SetAttr("kernel.ssa_loop", "tight")
	case k.FullLoops > 0:
		o.S.SetAttr("kernel.ssa_loop", "full")
	}
}
