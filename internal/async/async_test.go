package async

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/crn"
	"repro/internal/sim"
)

func runChain(t *testing.T, n int, x float64, ratio, tEnd float64) (*Chain, *crn.Network, float64) {
	t.Helper()
	net := crn.NewNetwork()
	c, err := NewChain(net, "d", n)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetInit(c.Input, x); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), net, sim.Config{Rates: sim.Rates{Fast: ratio, Slow: 1}, TEnd: tEnd})
	if err != nil {
		t.Fatal(err)
	}
	return c, net, tr.Final(c.Output)
}

func TestNewChainValidation(t *testing.T) {
	net := crn.NewNetwork()
	if _, err := NewChain(net, "d", 0); err == nil {
		t.Fatal("zero-element chain accepted")
	}
}

func TestSpeciesNames(t *testing.T) {
	net := crn.NewNetwork()
	c := MustNewChain(net, "d", 2)
	if c.Input != "d.B0" || c.Output != "d.R3" {
		t.Fatalf("input/output: %s %s", c.Input, c.Output)
	}
	for _, sp := range []string{"d.R1", "d.G1", "d.B1", "d.R2", "d.G2", "d.B2"} {
		if _, ok := net.SpeciesIndex(sp); !ok {
			t.Fatalf("species %s missing", sp)
		}
	}
}

func TestChainConservesSignalStatically(t *testing.T) {
	net := crn.NewNetwork()
	c := MustNewChain(net, "d", 3)
	if !net.ConservedSum(c.SignalWeights()) {
		t.Fatal("chain reactions do not conserve signal mass")
	}
}

func TestTwoElementTransfer(t *testing.T) {
	// The companion abstract's Figure 1(c) scenario: a quantity X placed
	// at B_0 propagates through two delay elements to Y = R_3 intact.
	c, _, y := runChain(t, 2, 1.0, 1000, 150)
	if math.Abs(y-1.0) > 0.03 {
		t.Fatalf("Y = %g, want 1.0", y)
	}
	_ = c
}

func TestTransferPreservesValue(t *testing.T) {
	// Signal quantities of order 1, the regime the companion abstract
	// demonstrates. Sub-unit quantities degrade gracefully because the
	// absence-indicator gate leak is relative to the total colour mass
	// (measured by experiment E6's amplitude sweep).
	for _, x := range []float64{0.5, 1.0, 2.0} {
		_, _, y := runChain(t, 2, x, 1000, 250)
		if math.Abs(y-x) > 0.05*math.Max(1, x) {
			t.Fatalf("X=%g: Y = %g", x, y)
		}
	}
}

func TestWavefrontOrdering(t *testing.T) {
	// The single quantity must visit R1, G1, B1, R2, G2, B2 in that
	// order: each species' half-rise comes strictly after the previous.
	net := crn.NewNetwork()
	c := MustNewChain(net, "d", 2)
	if err := net.SetInit(c.Input, 1); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), net, sim.Config{Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 150})
	if err != nil {
		t.Fatal(err)
	}
	seq := []string{c.R(1), c.G(1), c.B(1), c.R(2), c.G(2), c.B(2), c.Output}
	last := -1.0
	for _, sp := range seq {
		cr, err := tr.Crossings(sp, 0.5, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(cr) == 0 {
			t.Fatalf("%s never rose through 0.5", sp)
		}
		if cr[0] <= last {
			t.Fatalf("%s rose at %g, not after %g", sp, cr[0], last)
		}
		last = cr[0]
	}
}

func TestCrispHandoff(t *testing.T) {
	// At the abstract's ratio (1000) every intermediate stage should peak
	// near the full quantity: the transfer is crisp, not smeared.
	net := crn.NewNetwork()
	c := MustNewChain(net, "d", 2)
	if err := net.SetInit(c.Input, 1); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), net, sim.Config{Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 150})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		for _, sp := range []string{c.R(i), c.G(i), c.B(i)} {
			s := tr.MustSeries(sp)
			peak := 0.0
			for _, v := range s {
				if v > peak {
					peak = v
				}
			}
			if peak < 0.85 {
				t.Fatalf("%s peak %.3f, want > 0.85", sp, peak)
			}
		}
	}
}

func TestDynamicConservation(t *testing.T) {
	net := crn.NewNetwork()
	c := MustNewChain(net, "d", 2)
	if err := net.SetInit(c.Input, 1); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), net, sim.Config{Rates: sim.Rates{Fast: 500, Slow: 1}, TEnd: 100})
	if err != nil {
		t.Fatal(err)
	}
	w := c.SignalWeights()
	for k := 0; k < tr.Len(); k += 100 {
		sum := 0.0
		for sp, wt := range w {
			i, ok := tr.Index(sp)
			if !ok {
				t.Fatalf("species %s missing from trace", sp)
			}
			sum += wt * tr.Rows[k][i]
		}
		if math.Abs(sum-1) > 0.01 {
			t.Fatalf("signal mass at sample %d = %g", k, sum)
		}
	}
}

func TestLatencyIncreasesWithLength(t *testing.T) {
	lat := func(n int) float64 {
		net := crn.NewNetwork()
		c := MustNewChain(net, "d", n)
		if err := net.SetInit(c.Input, 1); err != nil {
			t.Fatal(err)
		}
		tr, err := sim.Run(context.Background(), net, sim.Config{Rates: sim.Rates{Fast: 500, Slow: 1}, TEnd: 400})
		if err != nil {
			t.Fatal(err)
		}
		l, err := c.Latency(tr, 1)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	l2, l4 := lat(2), lat(4)
	if l4 <= l2 {
		t.Fatalf("latency(4)=%g not beyond latency(2)=%g", l4, l2)
	}
	// Each element adds three phases; expect roughly double.
	if l4 < 1.5*l2 || l4 > 3*l2 {
		t.Fatalf("latency scaling off: l2=%g l4=%g", l2, l4)
	}
}

func TestLatencyErrorWhenNoTransfer(t *testing.T) {
	net := crn.NewNetwork()
	c := MustNewChain(net, "d", 2)
	// No input: output never rises.
	tr, err := sim.Run(context.Background(), net, sim.Config{TEnd: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Latency(tr, 1); err == nil {
		t.Fatal("latency without transfer accepted")
	}
}

// Property: the chain is a value-preserving channel for random quantities
// (rate-independence is exercised by a random ratio too).
func TestQuickValuePreserved(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy property test")
	}
	prop := func(xRaw, ratioRaw uint8) bool {
		x := 0.5 + float64(xRaw)/128 // 0.5 .. 2.5
		ratio := 500 + float64(ratioRaw)*4
		net := crn.NewNetwork()
		c := MustNewChain(net, "d", 2)
		if err := net.SetInit(c.Input, x); err != nil {
			return false
		}
		tr, err := sim.Run(context.Background(), net, sim.Config{Rates: sim.Rates{Fast: ratio, Slow: 1}, TEnd: 250})
		if err != nil {
			return false
		}
		y := tr.Final(c.Output)
		return math.Abs(y-x) < 0.08*math.Max(1, x)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingChainCarriesSuccessiveValues(t *testing.T) {
	net := crn.NewNetwork()
	c, err := NewStreamingChain(net, "d", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetInit(c.Input, 1); err != nil {
		t.Fatal(err)
	}
	// When the first value lands in the output accumulator, inject a
	// second one at the input; a one-shot chain would stall here.
	injected := false
	ev := &sim.Event{
		Probe: c.Output, High: 0.5, Low: 0.1,
		Fire: func(_ float64, s *sim.State) {
			if !injected {
				injected = true
				s.Add(c.Input, 0.7)
			}
		},
	}
	tr, err := sim.Run(context.Background(), net, sim.Config{
		Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 400, Events: []*sim.Event{ev},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !injected {
		t.Fatal("first value never reached the output")
	}
	if got := tr.Final(c.Output); math.Abs(got-1.7) > 0.08 {
		t.Fatalf("accumulated output = %g, want 1.7", got)
	}
}

func TestOneShotChainStallsOnSecondValue(t *testing.T) {
	// The faithful chain's documented limitation, demonstrated: a second
	// value injected after the first arrives never completes the passage
	// within the same horizon.
	net := crn.NewNetwork()
	c := MustNewChain(net, "d", 2)
	if err := net.SetInit(c.Input, 1); err != nil {
		t.Fatal(err)
	}
	injected := false
	ev := &sim.Event{
		Probe: c.Output, High: 0.5, Low: 0.1,
		Fire: func(_ float64, s *sim.State) {
			if !injected {
				injected = true
				s.Add(c.Input, 0.7)
			}
		},
	}
	tr, err := sim.Run(context.Background(), net, sim.Config{
		Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 400, Events: []*sim.Event{ev},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Final(c.Output); got > 1.4 {
		t.Fatalf("one-shot chain unexpectedly delivered the second value: %g", got)
	}
}
