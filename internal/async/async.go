// Package async implements the self-timed delay-element chain of the
// companion IWBDA 2011 abstract ("Asynchronous Sequential Computation with
// Molecular Reactions", Jiang, Riedel, Parhi), which serves this
// reproduction as the clockless baseline against the DAC paper's clocked
// scheme.
//
// A chain of n delay elements assigns element i the species R_i, G_i, B_i.
// The input X is represented by B_0 and the output Y by R_{n+1}. The
// reactions are exactly the abstract's (1)–(6), realized through
// phases.Scheme:
//
//	red-to-green   b + R_i → G_i        (+ feedback via I_{G_j})
//	green-to-blue  r + G_i → B_i        (+ feedback via I_{B_j})
//	blue-to-red    g + B_i → R_{i+1}    (+ feedback via I_{R_j})
//
// Because the three absence indicators are shared by every element, all
// elements advance phase in lock-step: no element can move to the next phase
// until every element has completed the current one. One full colour cycle
// advances every stored quantity by exactly one element — a self-timed shift
// register.
//
// Two measured properties of the published scheme worth knowing (both
// quantified by experiment E6):
//
//   - accuracy scales with signal magnitude: the absence-indicator gate leak
//     is kslow²/(kfast·mass), so quantities well below one unit smear across
//     stages at moderate rate ratios;
//   - the output R_{n+1} is itself a red member (the abstract's feedback
//     index set runs j = 1..n+1), so once the result arrives it suppresses
//     the red absence indicator permanently — the chain is a one-shot
//     structure, which is exactly how the abstract's Figure 1(c) uses it.
//     Streaming operation is the clocked (package core) regime.
package async

import (
	"fmt"

	"repro/internal/crn"
	"repro/internal/phases"
	"repro/internal/trace"
)

// Chain is a built delay-element chain.
type Chain struct {
	NS     string
	N      int    // number of delay elements
	Input  string // B_0
	Output string // R_{n+1}

	scheme *phases.Scheme
}

// NewChain constructs an n-element chain in the network under the given
// namespace and builds its scheme, faithful to the abstract (the output
// R_{n+1} is a red member, making the chain one-shot). The caller sets the
// input quantity with net.SetInit(chain.Input, x) and simulates.
func NewChain(net *crn.Network, ns string, n int) (*Chain, error) {
	return newChain(net, ns, n, false)
}

// NewStreamingChain is NewChain with one deviation from the abstract: the
// final blue→red transfer delivers into an uncoloured accumulator instead of
// a red member. Arrived values no longer suppress the red absence indicator,
// so the chain keeps cycling and can carry value after value; the Output
// accumulates their sum (recover individual values by differencing).
func NewStreamingChain(net *crn.Network, ns string, n int) (*Chain, error) {
	return newChain(net, ns, n, true)
}

func newChain(net *crn.Network, ns string, n int, streaming bool) (*Chain, error) {
	if n < 1 {
		return nil, fmt.Errorf("async: chain needs at least 1 element, got %d", n)
	}
	s := phases.NewScheme(net, ns+".ph")
	c := &Chain{NS: ns, N: n, scheme: s}
	c.Input = c.B(0)
	c.Output = c.R(n + 1)

	if err := s.AddMember(phases.Blue, c.Input); err != nil {
		return nil, err
	}
	for i := 1; i <= n; i++ {
		if err := s.AddMember(phases.Red, c.R(i)); err != nil {
			return nil, err
		}
		if err := s.AddMember(phases.Green, c.G(i)); err != nil {
			return nil, err
		}
		if err := s.AddMember(phases.Blue, c.B(i)); err != nil {
			return nil, err
		}
	}
	// The abstract's feedback index set for blue-to-red runs j = 1..n+1:
	// the output is a red member too — unless the chain streams, in which
	// case the output stays outside the colour system.
	if !streaming {
		if err := s.AddMember(phases.Red, c.Output); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= n; i++ {
		if err := s.AddTransfer(fmt.Sprintf("%s.rg%d", ns, i), c.R(i), map[string]int{c.G(i): 1}); err != nil {
			return nil, err
		}
		if err := s.AddTransfer(fmt.Sprintf("%s.gb%d", ns, i), c.G(i), map[string]int{c.B(i): 1}); err != nil {
			return nil, err
		}
	}
	for i := 0; i <= n; i++ {
		if err := s.AddTransfer(fmt.Sprintf("%s.br%d", ns, i), c.B(i), map[string]int{c.R(i + 1): 1}); err != nil {
			return nil, err
		}
	}
	if err := s.Build(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustNewChain is NewChain that panics on error.
func MustNewChain(net *crn.Network, ns string, n int) *Chain {
	c, err := NewChain(net, ns, n)
	if err != nil {
		panic(err)
	}
	return c
}

// R returns the name of the red species of element i (i = 1..n; i = n+1 is
// the output).
func (c *Chain) R(i int) string { return fmt.Sprintf("%s.R%d", c.NS, i) }

// G returns the name of the green species of element i (i = 1..n).
func (c *Chain) G(i int) string { return fmt.Sprintf("%s.G%d", c.NS, i) }

// B returns the name of the blue species of element i (i = 0..n; i = 0 is
// the input X).
func (c *Chain) B(i int) string { return fmt.Sprintf("%s.B%d", c.NS, i) }

// Scheme exposes the chain's phase scheme (for composing with other
// constructs before Build — note NewChain builds eagerly, so this is for
// inspection).
func (c *Chain) Scheme() *phases.Scheme { return c.scheme }

// SignalWeights returns the conservation weights under which total signal
// mass is invariant: every stage species at 1 and every feedback dimer at 2.
func (c *Chain) SignalWeights() map[string]float64 {
	w := map[string]float64{c.Input: 1, c.Output: 1}
	w[c.scheme.Dimer(c.Input)] = 2
	w[c.scheme.Dimer(c.Output)] = 2
	for i := 1; i <= c.N; i++ {
		for _, sp := range []string{c.R(i), c.G(i), c.B(i)} {
			w[sp] = 1
			w[c.scheme.Dimer(sp)] = 2
		}
	}
	return w
}

// Latency returns the time at which the output first rises through half the
// given input quantity — the chain's end-to-end transfer latency.
func (c *Chain) Latency(tr *trace.Trace, x float64) (float64, error) {
	cr, err := tr.Crossings(c.Output, x/2, true)
	if err != nil {
		return 0, err
	}
	if len(cr) == 0 {
		return 0, fmt.Errorf("async: output never reached %g/2", x)
	}
	return cr[0], nil
}
