package server

import (
	"fmt"
	"html/template"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/proc"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
)

// DebugHandler returns the operator-only debug surface: net/http/pprof
// under /debug/pprof/, the human-readable /debug/statusz dashboard, the
// /debug/tracez span browser and a /metrics mirror. It is intentionally a
// separate handler from Handler() so crnserved can bind it to an opt-in
// loopback listener (-debug-addr) — profiles and runtime internals never
// ship on the public API listener.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/statusz", s.handleStatusz)
	mux.HandleFunc("GET /debug/tracez", s.handleTracez)
	mux.HandleFunc("GET /debug/tsdb", s.handleTSDBPage)
	mux.HandleFunc("GET /debug/query", s.handleTSDBQuery)
	mux.HandleFunc("GET /debug/flightz", s.handleFlightList)
	mux.HandleFunc("GET /debug/flightz/{id}", s.handleFlightGet)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// statuszData is the view model of the /debug/statusz page.
type statuszData struct {
	Now        time.Time
	Uptime     time.Duration
	GoVersion  string
	Gomaxprocs int
	Goroutines int
	Draining   bool

	Caches      []statuszCache
	Jobs        []JobStatus
	JobStates   map[string]int
	Cluster     *statuszCluster
	RuleAlerts  []alert.RuleStatus
	Capsules    []flightInfoLink
	Alerts      []statuszKV
	Attribution []statuszAttr
	Runtime     *statuszRuntime
	Recent      []span.TraceSummary
	Slowest     []span.TraceSummary
}

// flightInfoLink pairs a capsule listing entry with its fetch URL.
type flightInfoLink struct {
	ID    string
	Time  time.Time
	Rule  string
	State string
}

type statuszCache struct {
	Name    string
	Entries int
	Hits    float64
	Misses  float64
	HitRate string
}

// statuszCluster is the coordinator panel: the live worker table and the
// partition map of every tracked job. Present only when this node was built
// with Config.Cluster.
type statuszCluster struct {
	Workers    []statuszWorker
	Partitions []cluster.PartitionStatus
}

// statuszWorker decorates a worker's membership snapshot with history from
// the per-worker tsdb series, which survives membership churn: the
// heartbeat-age trajectory and the lifetime point throughput.
type statuszWorker struct {
	cluster.WorkerStatus
	BeatSpark   string // cluster_worker_beat_age_seconds history
	PointsSpark string // per-step increments of cluster_worker_points_total
}

type statuszKV struct {
	Key   string
	Value float64
}

type statuszAttr struct {
	Kind       string
	CPUSeconds float64
	Allocs     float64
	AllocBytes float64
}

type statuszRuntime struct {
	Last       proc.Sample
	HeapSpark  string
	GorSpark   string
	CPUSpark   string // CPU seconds consumed per sampling step
	PauseSpark string // per-step GC pause max
	Samples    int
	Interval   time.Duration
}

// handleStatusz renders the one-page operator dashboard: process health,
// cache effectiveness, live and recent jobs, clock-health alerts, runtime
// sparklines from the proc collector, resource attribution totals, and the
// most recent / slowest traces.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	last := s.proc.Sample() // refresh the runtime numbers before rendering; nil-safe
	s.db.Poll()             // fold them into the history the sparklines read
	snap := s.reg.Snapshot()

	d := statuszData{
		Now:        time.Now(),
		Uptime:     time.Since(s.start).Round(time.Second),
		GoVersion:  runtime.Version(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Goroutines: runtime.NumGoroutine(),
		Draining:   s.Draining(),
		JobStates:  map[string]int{},
	}
	for _, c := range []struct {
		name string
		lru  *lruCache
	}{{"network", s.netCache}, {"response", s.resCache}} {
		hits := snap[fmt.Sprintf(`cache_hits_total{cache=%q}`, c.name)]
		misses := snap[fmt.Sprintf(`cache_misses_total{cache=%q}`, c.name)]
		rate := "n/a"
		if hits+misses > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*hits/(hits+misses))
		}
		entries := 0
		if c.lru != nil {
			entries = c.lru.len()
		}
		d.Caches = append(d.Caches, statuszCache{
			Name: c.name, Entries: entries, Hits: hits, Misses: misses, HitRate: rate,
		})
	}

	jobs := s.jobs.list()
	for _, j := range jobs {
		d.JobStates[j.State]++
	}
	if len(jobs) > 10 {
		jobs = jobs[:10]
	}
	d.Jobs = jobs

	if s.coord != nil {
		cl := &statuszCluster{Partitions: s.coord.Partitions()}
		for _, w := range s.coord.Workers() {
			sw := statuszWorker{WorkerStatus: w}
			sw.BeatSpark = sparkline(pointValues(s.tsdbRange(
				obs.Label("cluster_worker_beat_age_seconds", "worker", w.ID))))
			sw.PointsSpark = sparkline(pointDeltas(s.tsdbRange(
				obs.Label("cluster_worker_points_total", "worker", w.ID))))
			cl.Workers = append(cl.Workers, sw)
		}
		d.Cluster = cl
	}

	d.RuleAlerts = s.engine.Status()
	for _, info := range s.recorder.List() {
		d.Capsules = append(d.Capsules, flightInfoLink{
			ID: info.ID, Time: info.Time, Rule: info.Rule, State: info.State,
		})
	}
	if len(d.Capsules) > 10 {
		d.Capsules = d.Capsules[:10]
	}

	d.Alerts = snapshotFamily(snap, "clock_alerts_total{")
	for _, kind := range []string{"batch", "simulate"} {
		cpu := snap[fmt.Sprintf(`job_cpu_seconds{kind=%q}`, kind)]
		allocs := snap[fmt.Sprintf(`job_allocs_total{kind=%q}`, kind)]
		bytes := snap[fmt.Sprintf(`job_alloc_bytes_total{kind=%q}`, kind)]
		if cpu > 0 || allocs > 0 || bytes > 0 {
			d.Attribution = append(d.Attribution, statuszAttr{
				Kind: kind, CPUSeconds: cpu, Allocs: allocs, AllocBytes: bytes,
			})
		}
	}

	if s.proc != nil {
		heap := s.tsdbRange("proc_heap_bytes")
		rt := &statuszRuntime{
			Last:     last,
			Samples:  len(heap),
			Interval: s.db.Step(),
		}
		rt.HeapSpark = sparkline(pointValues(heap))
		rt.GorSpark = sparkline(pointValues(s.tsdbRange("proc_goroutines")))
		rt.CPUSpark = sparkline(pointDeltas(s.tsdbRange("proc_cpu_seconds_total")))
		rt.PauseSpark = sparkline(pointValues(s.tsdbRange(`proc_gc_pause_seconds{q="max"}`)))
		d.Runtime = rt
	}

	if store := s.tracer.Store(); store != nil {
		d.Recent = store.Summaries(10, false)
		d.Slowest = store.Summaries(5, true)
	}

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := statuszTmpl.Execute(w, d); err != nil {
		// The page is already partially written; nothing to repair.
		return
	}
}

// snapshotFamily extracts the series of one labelled metric family from a
// registry snapshot, sorted by series name: prefix is the family name
// including the opening '{'.
func snapshotFamily(snap map[string]float64, prefix string) []statuszKV {
	var out []statuszKV
	for k, v := range snap {
		if strings.HasPrefix(k, prefix) {
			out = append(out, statuszKV{Key: strings.TrimSuffix(k[len(prefix):], "}"), Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// tsdbRange reads one series' whole retained history from the embedded
// store (empty when the store is disabled).
func (s *Server) tsdbRange(name string) []tsdb.Point {
	return s.db.Range(name, 0)
}

// pointValues projects a range query into spark-ready values, capped at
// the last sparkWidth points.
func pointValues(pts []tsdb.Point) []float64 {
	if len(pts) > sparkWidth {
		pts = pts[len(pts)-sparkWidth:]
	}
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Value
	}
	return out
}

// pointDeltas projects the per-step increments of a cumulative series.
func pointDeltas(pts []tsdb.Point) []float64 {
	if len(pts) < 2 {
		return nil
	}
	if len(pts) > sparkWidth+1 {
		pts = pts[len(pts)-sparkWidth-1:]
	}
	out := make([]float64, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		if d := pts[i].Value - pts[i-1].Value; d > 0 {
			out[i-1] = d
		}
	}
	return out
}

// sparkWidth caps sparkline length: one rune per sample.
const sparkWidth = 60

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders a series as unicode block characters scaled to the
// series' own min..max range (a flat series renders as a flat low line).
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[i])
	}
	return sb.String()
}

var statuszTmpl = template.Must(template.New("statusz").Funcs(template.FuncMap{
	"bytes": func(v float64) string {
		switch {
		case v >= 1<<30:
			return fmt.Sprintf("%.2f GiB", v/(1<<30))
		case v >= 1<<20:
			return fmt.Sprintf("%.2f MiB", v/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.2f KiB", v/(1<<10))
		default:
			return fmt.Sprintf("%.0f B", v)
		}
	},
	"secs": func(v float64) string {
		switch {
		case v == 0:
			return "0"
		case v < 1e-3:
			return fmt.Sprintf("%.0fµs", v*1e6)
		case v < 1:
			return fmt.Sprintf("%.2fms", v*1e3)
		default:
			return fmt.Sprintf("%.3fs", v)
		}
	},
}).Parse(`<!DOCTYPE html>
<html><head><title>crnserved statusz</title>
<style>
body { font-family: monospace; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.4em; border-bottom: 1px solid #ccc; }
table { border-collapse: collapse; margin: .4em 0; }
td, th { padding: .15em .7em; text-align: left; border-bottom: 1px solid #eee; }
th { color: #555; font-weight: normal; }
.spark { font-size: 1.1em; letter-spacing: -1px; color: #2a6; }
.bad { color: #b00; } .ok { color: #2a6; }
.muted { color: #888; }
</style></head><body>
<h1>crnserved /debug/statusz</h1>

<h2>Health</h2>
<table>
<tr><th>state</th><td>{{if .Draining}}<span class="bad">draining</span>{{else}}<span class="ok">serving</span>{{end}}</td></tr>
<tr><th>uptime</th><td>{{.Uptime}}</td></tr>
<tr><th>go</th><td>{{.GoVersion}} · GOMAXPROCS {{.Gomaxprocs}}</td></tr>
<tr><th>goroutines</th><td>{{.Goroutines}}</td></tr>
<tr><th>rendered</th><td>{{.Now.Format "2006-01-02T15:04:05Z07:00"}}</td></tr>
</table>

<h2>Caches</h2>
<table>
<tr><th>cache</th><th>entries</th><th>hits</th><th>misses</th><th>hit rate</th></tr>
{{range .Caches}}<tr><td>{{.Name}}</td><td>{{.Entries}}</td><td>{{.Hits}}</td><td>{{.Misses}}</td><td>{{.HitRate}}</td></tr>
{{end}}</table>

<h2>Jobs</h2>
{{if .JobStates}}<p>{{range $state, $n := .JobStates}}{{$state}}: {{$n}} · {{end}}</p>{{else}}<p class="muted">no jobs yet</p>{{end}}
{{if .Jobs}}<table>
<tr><th>id</th><th>state</th><th>progress</th><th>created</th></tr>
{{range .Jobs}}<tr><td>{{.ID}}</td><td>{{.State}}</td><td>{{.Completed}}+{{.Failed}}/{{.Total}}</td><td>{{.Created.Format "15:04:05"}}</td></tr>
{{end}}</table>{{end}}

{{with .Cluster}}<h2>Cluster</h2>
{{if .Workers}}<table>
<tr><th>worker</th><th>addr</th><th>state</th><th>last beat</th><th>beat history</th><th>partitions</th><th>points</th><th>throughput</th><th>failures</th></tr>
{{range .Workers}}<tr><td>{{.ID}}</td><td>{{.Addr}}</td><td>{{if eq .State "alive"}}<span class="ok">{{.State}}</span>{{else}}<span class="bad">{{.State}}</span>{{end}}</td><td>{{printf "%.1fs ago" .AgeSeconds}}</td><td class="spark">{{.BeatSpark}}</td><td>{{.Partitions}}</td><td>{{.Points}}</td><td class="spark">{{.PointsSpark}}</td><td>{{if .Failures}}<span class="bad">{{.Failures}}</span>{{else}}0{{end}}</td></tr>
{{end}}</table>{{else}}<p class="muted">coordinator mode — no workers joined yet</p>{{end}}
{{if .Partitions}}<table>
<tr><th>job</th><th>partition</th><th>window</th><th>state</th><th>worker</th><th>attempts</th></tr>
{{range .Partitions}}<tr><td>{{.Job}}</td><td>{{.Part}}</td><td>[{{.Lo}},{{.Hi}})</td><td>{{if eq .State "failed"}}<span class="bad">{{.State}}</span>{{else if eq .State "done"}}<span class="ok">{{.State}}</span>{{else}}{{.State}}{{end}}</td><td>{{if .Worker}}{{.Worker}}{{else}}<span class="muted">local</span>{{end}}</td><td>{{.Attempts}}</td></tr>
{{end}}</table>{{end}}
{{end}}
<h2>Alerts</h2>
{{if .RuleAlerts}}<table>
<tr><th>rule</th><th>severity</th><th>state</th><th>since</th><th>value</th><th>fires</th></tr>
{{range .RuleAlerts}}<tr><td>{{.Rule.Name}}</td><td>{{.Rule.Severity}}</td><td>{{if eq .State "firing"}}<span class="bad">{{.State}}</span>{{else if eq .State "pending"}}{{.State}}{{else}}<span class="ok">{{.State}}</span>{{end}}</td><td>{{.Since.Format "15:04:05"}}</td><td>{{if .HasValue}}{{printf "%.4g" .Value}}{{else}}<span class="muted">no data</span>{{end}}</td><td>{{.Fires}}</td></tr>
{{end}}</table>{{else}}<p class="muted">alert engine disabled</p>{{end}}
{{if .Capsules}}<p>flight capsules: {{range .Capsules}}<a href="/debug/flightz/{{.ID}}">{{.ID}}</a> ({{.Rule}}, {{.Time.Format "15:04:05"}}) {{end}}</p>{{end}}

<h2>Clock alerts</h2>
{{if .Alerts}}<table>
<tr><th>rule</th><th>count</th></tr>
{{range .Alerts}}<tr><td class="bad">{{.Key}}</td><td>{{.Value}}</td></tr>
{{end}}</table>{{else}}<p class="ok">none — the tri-phase invariants held</p>{{end}}

<h2>Resource attribution</h2>
{{if .Attribution}}<table>
<tr><th>kind</th><th>cpu</th><th>allocs</th><th>alloc bytes</th></tr>
{{range .Attribution}}<tr><td>{{.Kind}}</td><td>{{secs .CPUSeconds}}</td><td>{{.Allocs}}</td><td>{{bytes .AllocBytes}}</td></tr>
{{end}}</table>{{else}}<p class="muted">no attributed work yet</p>{{end}}

<h2>Runtime</h2>
{{with .Runtime}}<table>
<tr><th>heap</th><td>{{bytes .Last.HeapBytes}}</td><td class="spark">{{.HeapSpark}}</td></tr>
<tr><th>goroutines</th><td>{{.Last.Goroutines}}</td><td class="spark">{{.GorSpark}}</td></tr>
<tr><th>cpu / interval</th><td>{{secs .Last.CPUSeconds}} total</td><td class="spark">{{.CPUSpark}}</td></tr>
<tr><th>gc pause max</th><td>{{secs .Last.GCPauseMax}}</td><td class="spark">{{.PauseSpark}}</td></tr>
<tr><th>gc cycles</th><td>{{.Last.GCCycles}}</td><td class="muted">{{.Samples}} samples @ {{.Interval}}</td></tr>
<tr><th>sched lat p99</th><td>{{secs .Last.SchedLatP99}}</td><td></td></tr>
</table>{{else}}<p class="muted">proc collector disabled</p>{{end}}

<h2>Recent traces</h2>
{{if .Recent}}<table>
<tr><th>trace</th><th>root</th><th>spans</th><th>duration</th><th>errors</th></tr>
{{range .Recent}}<tr><td><a href="/debug/tracez?trace={{.TraceID}}">{{.TraceID}}</a></td><td>{{.Root}}</td><td>{{.Spans}}</td><td>{{.Duration}}</td><td>{{if .Errors}}<span class="bad">{{.Errors}}</span>{{else}}0{{end}}</td></tr>
{{end}}</table>{{else}}<p class="muted">no traces yet</p>{{end}}

<h2>Slowest traces</h2>
{{if .Slowest}}<table>
<tr><th>trace</th><th>root</th><th>spans</th><th>duration</th></tr>
{{range .Slowest}}<tr><td><a href="/debug/tracez?trace={{.TraceID}}">{{.TraceID}}</a></td><td>{{.Root}}</td><td>{{.Spans}}</td><td>{{.Duration}}</td></tr>
{{end}}</table>{{else}}<p class="muted">no traces yet</p>{{end}}

<p class="muted">profiles: <a href="/debug/pprof/">/debug/pprof/</a> · metrics: <a href="/metrics">/metrics</a> · traces: <a href="/debug/tracez">/debug/tracez</a></p>
</body></html>
`))
