package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/crn"
	"repro/internal/exper"
	"repro/internal/obs"
	"repro/internal/obs/proc"
	"repro/internal/obs/span"
	"repro/internal/ode"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SimulateRequest is the body of POST /v1/simulate. Exactly one of CRN
// (network text in the repository's .crn format) and Experiment (an ID from
// GET /v1/experiments) must be set. Zero-valued options select the same
// defaults as cmd/crnsim: ODE, fast/slow = 100/1, unit 100, horizon/1000
// sampling.
type SimulateRequest struct {
	CRN        string `json:"crn,omitempty"`
	Experiment string `json:"experiment,omitempty"`

	Method      string  `json:"method,omitempty"` // ode (default), ssa, tauleap
	Solver      string  `json:"solver,omitempty"` // ODE only: auto (default), explicit, stiff
	TEnd        float64 `json:"t_end,omitempty"`  // required in CRN mode
	SampleEvery float64 `json:"sample_every,omitempty"`
	Fast        float64 `json:"fast,omitempty"`
	Slow        float64 `json:"slow,omitempty"`
	Unit        float64 `json:"unit,omitempty"` // stochastic methods only
	Seed        int64   `json:"seed,omitempty"`

	// Runs requests a multi-run ensemble instead of a single trajectory:
	// Runs > 1 (or a non-empty Seeds list) executes the replicates through
	// the SoA ensemble engine and returns per-run final states with
	// across-run mean and standard deviation in Ensemble — no trajectory.
	// CRN mode only.
	Runs int `json:"runs,omitempty"`
	// Seeds pins each run's RNG seed explicitly (its length then sets the
	// run count); when empty, run i derives its seed from Seed the same way
	// sweep jobs do.
	Seeds []int64 `json:"seeds,omitempty"`

	// Record restricts the returned trajectory (or ensemble statistics) to
	// these species, in order. Empty returns every species.
	Record []string `json:"record,omitempty"`

	// TimeoutSeconds shortens the per-request deadline below the server's
	// SimTimeout ceiling; it can never extend it.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`

	// Quick selects the experiment's quick configuration (Experiment mode).
	Quick bool `json:"quick,omitempty"`
}

// SimulateResponse is the body of a successful POST /v1/simulate. CRN mode
// fills the trajectory fields (single run) or Ensemble (runs/seeds set);
// Experiment mode fills Result.
type SimulateResponse struct {
	Method  string             `json:"method,omitempty"`
	Species []string           `json:"species,omitempty"`
	T       []float64          `json:"t,omitempty"`
	Rows    [][]float64        `json:"rows,omitempty"`
	Final   map[string]float64 `json:"final,omitempty"`

	Ensemble *EnsembleSummary  `json:"ensemble,omitempty"`
	Result   *ExperimentResult `json:"result,omitempty"`
}

// EnsembleSummary is the multi-run response shape: per-run final states and
// across-run statistics over the successful runs.
type EnsembleSummary struct {
	Runs   int                `json:"runs"`
	OK     int                `json:"ok"` // runs that completed
	PerRun []RunSummary       `json:"per_run"`
	Mean   map[string]float64 `json:"mean,omitempty"`
	Stddev map[string]float64 `json:"stddev,omitempty"`
}

// RunSummary is one ensemble run's outcome.
type RunSummary struct {
	Seed  int64              `json:"seed"`
	Final map[string]float64 `json:"final,omitempty"`
	Err   string             `json:"error,omitempty"`
}

// ExperimentResult mirrors exper.Result for JSON transport.
type ExperimentResult struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	Figure string     `json:"figure,omitempty"`
	Notes  []string   `json:"notes,omitempty"`
}

// cachedResponse is a finished deterministic response: the exact bytes and
// content type served on the original miss, replayed verbatim on every hit
// so identical requests get byte-identical bodies.
type cachedResponse struct {
	body []byte
}

// decodeRequest parses the JSON body into v with the body-size cap and
// strict field checking; every failure maps to a structured apiError.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return errf(http.StatusRequestEntityTooLarge, CodeTooLarge,
				"request body exceeds the %d-byte limit", tooBig.Limit)
		}
		return errf(http.StatusBadRequest, CodeInvalidRequest, "invalid JSON body: %v", err)
	}
	if dec.More() {
		return errf(http.StatusBadRequest, CodeInvalidRequest, "trailing data after JSON body")
	}
	return nil
}

// loadNetwork parses CRN text through the compiled-network cache and applies
// the species/reaction limits. Parsed networks are immutable while serving
// (simulation state lives in per-run vectors), so cache entries are shared
// across concurrent requests.
func (s *Server) loadNetwork(text string) (*crn.Network, error) {
	sum := sha256.Sum256([]byte(text))
	key := hex.EncodeToString(sum[:])
	if v, ok := s.netCache.get(key); ok {
		return v.(*crn.Network), nil
	}
	net, err := crn.ParseString(text)
	if err != nil {
		return nil, errf(http.StatusBadRequest, CodeInvalidRequest, "%v", err)
	}
	if n, limit := net.NumSpecies(), s.cfg.Limits.MaxSpecies; n > limit {
		return nil, errf(http.StatusUnprocessableEntity, CodeLimitExceeded,
			"network has %d species, limit is %d", n, limit)
	}
	if n, limit := net.NumReactions(), s.cfg.Limits.MaxReactions; n > limit {
		return nil, errf(http.StatusUnprocessableEntity, CodeLimitExceeded,
			"network has %d reactions, limit is %d", n, limit)
	}
	if unused := net.UnusedSpecies(); len(unused) > 0 {
		return nil, errf(http.StatusBadRequest, CodeInvalidRequest,
			"species declared but used by no reaction: %s (typo in a reaction line?)",
			strings.Join(unused, ", "))
	}
	s.netCache.add(key, net)
	return net, nil
}

// simConfig translates the request's options to a sim.Config (defaults
// matching cmd/crnsim) without yet validating them — sim.Run does that.
func (r *SimulateRequest) simConfig(method sim.Method, solver sim.Solver) sim.Config {
	rates := sim.Rates{Fast: r.Fast, Slow: r.Slow}
	if rates == (sim.Rates{}) {
		rates = sim.DefaultRates()
	}
	unit := r.Unit
	if unit == 0 {
		unit = 100
	}
	return sim.Config{
		Method:      method,
		Solver:      solver,
		Rates:       rates,
		TEnd:        r.TEnd,
		SampleEvery: r.SampleEvery,
		Unit:        unit,
		Seed:        r.Seed,
	}
}

// canonicalKey reduces the request to its semantic content and hashes it:
// the parsed network re-rendered in the canonical text format (so comments,
// whitespace and equivalent formatting never split the cache), the resolved
// method name, the effective rates/horizon/sampling/unit, and the seed only
// where it matters (stochastic methods and experiments — the ODE ignores
// it). The second return value reports whether the response is deterministic
// and therefore cacheable: ODE always, SSA/tau-leap only under an explicit
// non-zero seed, experiments always (their tables are functions of
// (id, quick, seed) by the batch engine's determinism guarantee).
func canonicalKey(req *SimulateRequest, method sim.Method, solver sim.Solver, net *crn.Network) (string, bool) {
	cfg := req.simConfig(method, solver)
	canon := struct {
		Kind   string
		Net    string
		Exper  string
		Method string
		Solver string
		TEnd   float64
		Sample float64
		Fast   float64
		Slow   float64
		Unit   float64
		Seed   int64
		Runs   int
		Seeds  []int64
		Record []string
		Quick  bool
	}{
		Method: method.String(),
		TEnd:   cfg.TEnd,
		Sample: cfg.SampleEvery,
		Fast:   cfg.Rates.Fast,
		Slow:   cfg.Rates.Slow,
		Record: req.Record,
	}
	cacheable := true
	if req.Experiment != "" {
		canon.Kind = "exper"
		canon.Exper = req.Experiment
		canon.Seed = req.Seed
		canon.Quick = req.Quick
	} else {
		canon.Kind = "crn"
		canon.Net = net.String()
		canon.Runs = req.Runs
		canon.Seeds = req.Seeds
		// The solver splits the key: explicit and stiff trajectories agree
		// only to tolerance, not bit-for-bit, so they must not share a
		// cached response.
		canon.Solver = cfg.Solver.String()
		if method != sim.ODE {
			canon.Unit = cfg.Unit
			canon.Seed = req.Seed
			// A stochastic response is deterministic — and therefore
			// cacheable — only when its RNG streams are pinned: an explicit
			// seed set, or a non-zero base seed (per-run seeds derive from
			// it deterministically).
			cacheable = req.Seed != 0 || len(req.Seeds) > 0
		}
	}
	b, err := json.Marshal(canon)
	if err != nil {
		return "", false // unreachable: the struct is plain data
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), cacheable
}

// deadline resolves the effective per-request deadline: the server ceiling,
// shortened by a positive timeout_seconds.
func (s *Server) deadline(req float64) time.Duration {
	d := s.cfg.SimTimeout
	if req > 0 {
		if rd := time.Duration(req * float64(time.Second)); rd < d {
			d = rd
		}
	}
	return d
}

// handleSimulate is POST /v1/simulate.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, errf(http.StatusServiceUnavailable, CodeUnavailable, "server is draining"))
		return
	}
	var req SimulateRequest
	if err := s.decodeRequest(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if (req.CRN == "") == (req.Experiment == "") {
		writeError(w, errf(http.StatusBadRequest, CodeInvalidRequest,
			"exactly one of crn and experiment must be set"))
		return
	}
	method, err := sim.ParseMethod(req.Method)
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, CodeInvalidRequest, "%v", err))
		return
	}
	solver, err := sim.ParseSolver(req.Solver)
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, CodeInvalidRequest, "%v", err))
		return
	}
	if req.Runs < 0 {
		writeError(w, errf(http.StatusBadRequest, CodeInvalidRequest,
			"runs must be non-negative, got %d", req.Runs))
		return
	}
	if req.Experiment != "" && (req.Runs != 0 || len(req.Seeds) > 0) {
		writeError(w, errf(http.StatusBadRequest, CodeInvalidRequest,
			"runs/seeds apply to CRN mode only (experiments manage their own replication)"))
		return
	}
	if req.Experiment != "" && req.Solver != "" {
		writeError(w, errf(http.StatusBadRequest, CodeInvalidRequest,
			"solver applies to CRN mode only (experiments choose their own solvers)"))
		return
	}

	var net *crn.Network
	if req.CRN != "" {
		if net, err = s.loadNetwork(req.CRN); err != nil {
			writeError(w, err)
			return
		}
	} else if _, ok := exper.ByID(req.Experiment); !ok {
		writeError(w, errf(http.StatusNotFound, CodeNotFound,
			"unknown experiment %q (list them at /v1/experiments)", req.Experiment))
		return
	}

	sp := span.FromContext(r.Context())
	key, cacheable := canonicalKey(&req, method, solver, net)
	if v, ok := s.resCache.get(key); ok {
		sp.SetAttr("cache", "hit")
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Server-Timing", "cache;desc=hit")
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(v.(cachedResponse).body)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.TimeoutSeconds))
	defer cancel()
	wait, err := s.acquireSim(ctx)
	if err != nil {
		s.simCanceled.Inc()
		writeError(w, errf(statusForCtx(err), CodeCanceled,
			"request ended while waiting for a simulation slot: %v", err))
		return
	}
	defer s.releaseSim()
	sp.SetAttr("cache", "miss")
	sp.SetAttr("queue_wait_seconds", wait.Seconds())

	// Resource attribution: bracket the simulation with process-global
	// usage readings (CPU time, allocation volume). Like the batch engine's
	// per-job numbers these are approximate under concurrency — see
	// DESIGN.md — but exact in aggregate at quiescence.
	u0 := proc.ReadUsage()
	simStart := time.Now()
	var resp *SimulateResponse
	switch {
	case req.CRN != "" && (req.Runs > 1 || len(req.Seeds) > 0):
		resp, err = s.runEnsemble(ctx, net, &req, method, solver)
	case req.CRN != "":
		resp, err = s.runCRN(ctx, net, &req, method, solver)
	default:
		resp, err = s.runExperiment(ctx, &req)
	}
	simDur := time.Since(simStart)
	du := proc.ReadUsage().Sub(u0)
	sp.SetAttr("req.cpu_seconds", du.CPUSeconds)
	sp.SetAttr("req.alloc_bytes", int64(du.AllocBytes))
	sp.SetAttr("req.allocs", int64(du.AllocObjects))
	s.attrCPU.Add(du.CPUSeconds)
	s.attrAllocs.Add(du.AllocObjects)
	s.attrAllocBytes.Add(du.AllocBytes)
	if err != nil {
		writeError(w, err)
		return
	}
	body, merr := json.Marshal(resp)
	if merr != nil {
		writeError(w, merr)
		return
	}
	if cacheable {
		s.resCache.add(key, cachedResponse{body: body})
	}
	w.Header().Set("X-Cache", "miss")
	// Server-Timing phases in ms, readable straight from browser dev tools:
	// time queued for a sim slot, then time simulating.
	w.Header().Set("Server-Timing", fmt.Sprintf("cache;desc=miss, queue;dur=%.3f, sim;dur=%.3f",
		float64(wait.Microseconds())/1e3, float64(simDur.Microseconds())/1e3))
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(body)
}

// runCRN executes one simulation of the parsed network and shapes the
// trajectory response.
func (s *Server) runCRN(ctx context.Context, net *crn.Network, req *SimulateRequest, method sim.Method, solver sim.Solver) (*SimulateResponse, error) {
	cfg := req.simConfig(method, solver)
	// Single runs feed the server registry like ensembles and experiments
	// do, so /metrics reports solver choices and stiff-integration effort
	// (ode_solver_runs_total, ode_stiff_*) for interactive requests too.
	cfg.Obs = obs.NewRegistryObserver(s.reg)
	tr, err := sim.Run(ctx, net, cfg)
	if err != nil {
		var ce *sim.ConfigError
		if errors.As(err, &ce) {
			return nil, configError(err)
		}
		if cerr := context.Cause(ctx); cerr != nil {
			s.simCanceled.Inc()
			return nil, errf(statusForCtx(cerr), CodeCanceled,
				"simulation interrupted: %v", err)
		}
		if ae := stiffnessError(err, solver); ae != nil {
			return nil, ae
		}
		return nil, errf(http.StatusUnprocessableEntity, CodeSimFailed, "%v", err)
	}
	return shapeTrajectory(tr, method, req.Record)
}

// stiffnessError recognizes an ODE step-size collapse — the signature of a
// stiff system ground down by an explicit method — and upgrades the opaque
// failure to a structured envelope telling the client which knob to turn.
// Returns nil for every other error.
func stiffnessError(err error, solver sim.Solver) *apiError {
	if !errors.Is(err, ode.ErrMinStep) && !errors.Is(err, ode.ErrMaxSteps) {
		return nil
	}
	hint := `set "solver":"stiff" (or drop the solver field for automatic switching)`
	if solver == sim.SolverStiff {
		// The stiff solver itself gave up: switching won't help.
		hint = "loosen the tolerances or shorten t_end"
	}
	ae := errf(http.StatusUnprocessableEntity, CodeStiffness,
		"the ODE integrator's step size collapsed (%v); the system is likely stiff — %s", err, hint)
	ae.Fields = []errorField{{Field: "solver", Message: hint}}
	return ae
}

// runEnsemble executes a multi-run replicate set of the parsed network
// through sim.RunMany (SoA lane engine, finals only — ensembles return
// statistics, not trajectories) and shapes the per-run summaries.
func (s *Server) runEnsemble(ctx context.Context, net *crn.Network, req *SimulateRequest, method sim.Method, solver sim.Solver) (*SimulateResponse, error) {
	runs := req.Runs
	if runs == 0 {
		runs = len(req.Seeds)
	}
	if len(req.Seeds) > 0 && req.Runs > 1 && len(req.Seeds) != req.Runs {
		return nil, errf(http.StatusBadRequest, CodeInvalidRequest,
			"seeds lists %d entries but runs is %d", len(req.Seeds), req.Runs)
	}
	if limit := s.cfg.Limits.MaxSweepPoints; runs > limit {
		return nil, errf(http.StatusUnprocessableEntity, CodeLimitExceeded,
			"ensemble of %d runs exceeds the %d-run limit", runs, limit)
	}
	cfg := req.simConfig(method, solver)
	// Workers stays 0: the handler already holds a sim slot, so the
	// replicates run inline on this goroutine through shared SoA blocks.
	ens, err := sim.RunMany(ctx, net, sim.BatchConfig{
		Base:       cfg,
		Runs:       runs,
		Seeds:      req.Seeds,
		FinalsOnly: true,
		Metrics:    s.reg,
	})
	if err != nil {
		var ce *sim.ConfigError
		if errors.As(err, &ce) {
			return nil, configError(err)
		}
		if cerr := context.Cause(ctx); cerr != nil {
			s.simCanceled.Inc()
			return nil, errf(statusForCtx(cerr), CodeCanceled,
				"ensemble interrupted: %v", err)
		}
		return nil, errf(http.StatusUnprocessableEntity, CodeSimFailed, "%v", err)
	}
	return shapeEnsemble(ens, req, method, cfg)
}

// shapeEnsemble projects an ensemble's finals and across-run statistics onto
// the response type, optionally restricted to the requested species.
func shapeEnsemble(ens *trace.Ensemble, req *SimulateRequest, method sim.Method, cfg sim.Config) (*SimulateResponse, error) {
	names := ens.Names
	cols := make([]int, 0, len(names))
	if len(req.Record) > 0 {
		names = req.Record
		for _, n := range req.Record {
			i, ok := ens.Index(n)
			if !ok {
				return nil, errf(http.StatusBadRequest, CodeInvalidRequest,
					"record species %q not in the network", n)
			}
			cols = append(cols, i)
		}
	} else {
		for i := range names {
			cols = append(cols, i)
		}
	}
	project := func(row []float64) map[string]float64 {
		if row == nil {
			return nil
		}
		m := make(map[string]float64, len(cols))
		for j, c := range cols {
			m[names[j]] = row[c]
		}
		return m
	}
	sum := &EnsembleSummary{
		Runs:   ens.Runs(),
		OK:     ens.OK(),
		PerRun: make([]RunSummary, ens.Runs()),
		Mean:   project(ens.Mean()),
		Stddev: project(ens.Stddev()),
	}
	for i := range sum.PerRun {
		rs := RunSummary{Seed: runSeed(req, cfg, i), Final: project(ens.Finals[i])}
		if ens.Errs[i] != nil {
			rs.Err = ens.Errs[i].Error()
		}
		sum.PerRun[i] = rs
	}
	return &SimulateResponse{
		Method:   method.String(),
		Species:  append([]string(nil), names...),
		Ensemble: sum,
	}, nil
}

// runSeed replicates sim.RunMany's per-run seed assignment so responses can
// report each run's effective seed: an explicit Seeds entry wins, stochastic
// runs otherwise derive from the base seed exactly like sweep-job points,
// and the ODE (which never draws) keeps the base seed.
func runSeed(req *SimulateRequest, cfg sim.Config, i int) int64 {
	if len(req.Seeds) > 0 {
		return req.Seeds[i]
	}
	if cfg.Method != sim.ODE {
		return batch.DeriveSeed(cfg.Seed, i)
	}
	return cfg.Seed
}

// shapeTrajectory projects a trace onto the response type, optionally
// restricted to the requested species columns.
func shapeTrajectory(tr *trace.Trace, method sim.Method, record []string) (*SimulateResponse, error) {
	names := tr.Names
	cols := make([]int, 0, len(names))
	if len(record) > 0 {
		names = record
		for _, n := range record {
			i, ok := tr.Index(n)
			if !ok {
				return nil, errf(http.StatusBadRequest, CodeInvalidRequest,
					"record species %q not in the network", n)
			}
			cols = append(cols, i)
		}
	} else {
		for i := range names {
			cols = append(cols, i)
		}
	}
	rows := make([][]float64, len(tr.Rows))
	for k, row := range tr.Rows {
		out := make([]float64, len(cols))
		for j, c := range cols {
			out[j] = row[c]
		}
		rows[k] = out
	}
	final := make(map[string]float64, len(names))
	for j, n := range names {
		if len(rows) > 0 {
			final[n] = rows[len(rows)-1][j]
		}
	}
	return &SimulateResponse{
		Method:  method.String(),
		Species: append([]string(nil), names...),
		T:       tr.T,
		Rows:    rows,
		Final:   final,
	}, nil
}

// runExperiment executes a registered reproduction experiment and shapes its
// table response. Grid experiments fan across the server's batch pool; their
// simulator metrics merge into the server registry.
func (s *Server) runExperiment(ctx context.Context, req *SimulateRequest) (*SimulateResponse, error) {
	e, _ := exper.ByID(req.Experiment) // existence checked by the handler
	res, err := e.Run(ctx, exper.Config{
		Quick:   req.Quick,
		Seed:    req.Seed,
		Workers: s.cfg.Workers,
		Metrics: s.reg,
	})
	if err != nil {
		if cerr := context.Cause(ctx); cerr != nil {
			s.simCanceled.Inc()
			return nil, errf(statusForCtx(cerr), CodeCanceled,
				"experiment interrupted: %v", err)
		}
		return nil, errf(http.StatusUnprocessableEntity, CodeSimFailed, "%v", err)
	}
	return &SimulateResponse{Result: &ExperimentResult{
		ID:     res.ID,
		Title:  res.Title,
		Header: res.Header,
		Rows:   res.Rows,
		Figure: res.Figure,
		Notes:  res.Notes,
	}}, nil
}

// statusForCtx maps a context termination to an HTTP status: deadline expiry
// is the server's own ceiling (504), everything else means the client went
// away (499-style; 400 is the closest standard code net/http can still
// deliver, but by then the client is usually gone anyway).
func statusForCtx(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

// handleExperiments is GET /v1/experiments: the registered experiment
// descriptors, ready to feed back into POST /v1/simulate.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type descriptor struct {
		ID    string   `json:"id"`
		Title string   `json:"title"`
		Tags  []string `json:"tags"`
	}
	regs := exper.Registry()
	out := make([]descriptor, len(regs))
	for i, d := range regs {
		out[i] = descriptor{ID: d.ID, Title: d.Title, Tags: d.Tags}
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}
