package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/sim"
)

// Cluster HTTP surface. Every crnserved process mounts the partition
// executor (POST /cluster/v1/partition) — any node can do sweep work — while
// the membership endpoints (join/heartbeat/leave/workers) exist only on a
// node built with Config.Cluster, the coordinator.
//
// The deterministic sharding contract lives in runPartition: a partition is
// the global sweep restricted to [lo, hi), each point keeping its global
// index — and with it its ratio (index/runs) and its RNG seed
// (batch.DeriveSeed(base, index)). sim.RunMany receives those seeds
// explicitly, so the bits a worker produces for point i are exactly the bits
// the single-node executor would have produced, regardless of how the sweep
// was chunked, which worker ran it, or how often it was retried.

// handleClusterJoin is POST /cluster/v1/join.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, errf(http.StatusServiceUnavailable, CodeUnavailable, "server is draining"))
		return
	}
	var req cluster.JoinRequest
	if err := s.decodeRequest(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.ID == "" || req.Addr == "" {
		writeError(w, errf(http.StatusBadRequest, CodeInvalidRequest, "join needs id and addr"))
		return
	}
	writeJSON(w, http.StatusOK, s.coord.Join(req))
}

// handleClusterHeartbeat is POST /cluster/v1/heartbeat. A 404 tells the
// worker its registration is gone and it must re-join.
func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req cluster.HeartbeatRequest
	if err := s.decodeRequest(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !s.coord.Heartbeat(req.ID) {
		writeError(w, errf(http.StatusNotFound, CodeNotFound, "unknown worker %q, re-join", req.ID))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleClusterLeave is POST /cluster/v1/leave.
func (s *Server) handleClusterLeave(w http.ResponseWriter, r *http.Request) {
	var req cluster.HeartbeatRequest
	if err := s.decodeRequest(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.coord.Leave(req.ID)
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleClusterWorkers is GET /cluster/v1/workers.
func (s *Server) handleClusterWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": s.coord.Workers()})
}

// handlePartition is POST /cluster/v1/partition: execute sweep points
// [lo, hi) and return their outcomes plus this node's telemetry — the
// counter deltas accumulated while executing and the span tree of the
// execution, parented under the coordinator's dispatch span via the incoming
// traceparent so the merged trace shows remote work in place.
func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, errf(http.StatusServiceUnavailable, CodeUnavailable, "server is draining"))
		return
	}
	var req cluster.PartitionRequest
	if err := s.decodeRequest(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if points := req.Sweep.Points(); req.Lo < 0 || req.Hi > points || req.Lo >= req.Hi {
		writeError(w, errf(http.StatusBadRequest, CodeInvalidRequest,
			"bad partition window [%d,%d) of %d points", req.Lo, req.Hi, points))
		return
	}
	if d := s.cfg.PartitionDelay; d > 0 {
		// Network-latency emulation for scale-model benchmarking (see
		// Config.PartitionDelay); never set in production.
		select {
		case <-time.After(d):
		case <-r.Context().Done():
			return
		}
	}

	// The partition runs under its own registry and tracer so its telemetry
	// is shippable as a delta; both are folded into this node's own surfaces
	// afterwards, so a worker's /metrics and /debug/tracez stay truthful.
	preg := obs.NewRegistry()
	ptracer := span.NewTracer(0)
	var psp *span.Span
	if tid, sid, err := span.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
		psp = ptracer.Join(tid, sid, fmt.Sprintf("cluster.exec[%d]", req.Part))
	} else {
		psp = ptracer.Root(fmt.Sprintf("cluster.exec[%d]", req.Part))
	}
	psp.SetAttr("job.id", req.Job)
	psp.SetAttr("cluster.lo", req.Lo)
	psp.SetAttr("cluster.hi", req.Hi)

	ctx := span.NewContext(r.Context(), psp)
	outs, err := s.runPartition(ctx, &req.Sweep, req.Lo, req.Hi, preg)
	psp.SetError(err)
	psp.End()

	counters := preg.Counters()
	s.reg.Merge(preg)
	spans := ptracer.Store().Recent(0)
	for _, d := range spans {
		s.tracer.Store().Ingest(d)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	s.reg.Counter("cluster_partitions_served_total").Inc()
	writeJSON(w, http.StatusOK, cluster.PartitionResponse{
		Outcomes: outs, Metrics: counters, Spans: spans,
	})
}

// localPartition adapts runPartition to the coordinator's Deps.Local
// signature: the fallback path runs against the server's own registry and
// whatever span is on ctx (the job span), exactly like local sweep points.
func (s *Server) localPartition(ctx context.Context, sw *cluster.Sweep, lo, hi int) ([]cluster.Outcome, error) {
	return s.runPartition(ctx, sw, lo, hi, s.reg)
}

// runPartition executes sweep points [lo, hi) through sim.RunMany with the
// global per-point seeds and ratios — the deterministic sharding contract.
func (s *Server) runPartition(ctx context.Context, sw *cluster.Sweep, lo, hi int, reg *obs.Registry) ([]cluster.Outcome, error) {
	if sw.CRN == "" {
		return nil, errf(http.StatusBadRequest, CodeInvalidRequest, "crn is required")
	}
	method, err := sim.ParseMethod(sw.Method)
	if err != nil {
		return nil, errf(http.StatusBadRequest, CodeInvalidRequest, "%v", err)
	}
	net, err := s.loadNetwork(sw.CRN)
	if err != nil {
		return nil, err
	}
	for _, name := range sw.Record {
		if _, ok := net.SpeciesIndex(name); !ok {
			return nil, errf(http.StatusBadRequest, CodeInvalidRequest,
				"record species %q not in the network", name)
		}
	}
	for _, ratio := range sw.Ratios {
		if ratio < 1 {
			return nil, errf(http.StatusBadRequest, CodeInvalidRequest,
				"ratio %g below 1 inverts the fast/slow dichotomy", ratio)
		}
	}
	if points, limit := sw.Points(), s.cfg.Limits.MaxSweepPoints; points > limit {
		return nil, errf(http.StatusUnprocessableEntity, CodeLimitExceeded,
			"sweep has %d points, limit is %d", points, limit)
	}
	base := SimulateRequest{
		Method: sw.Method, TEnd: sw.TEnd, SampleEvery: sw.SampleEvery,
		Fast: sw.Fast, Slow: sw.Slow, Unit: sw.Unit,
	}
	baseCfg := base.simConfig(method, sim.SolverAuto)
	baseCfg.Seed = sw.Seed
	if err := baseCfg.Validate(); err != nil {
		return nil, configError(err)
	}
	baseRates := baseCfg.Rates

	n := hi - lo
	var seeds []int64
	if method != sim.ODE {
		// Explicit global seeds: point lo+j gets the seed the single-node
		// engine would derive for index lo+j. (The ODE never draws and keeps
		// the base seed, matching the single-node path's derivation branch.)
		seeds = make([]int64, n)
		for j := range seeds {
			seeds[j] = sw.PointSeed(lo + j)
		}
	}
	ens, runErr := sim.RunMany(ctx, net, sim.BatchConfig{
		Base:       baseCfg,
		Runs:       n,
		Seeds:      seeds,
		Workers:    s.cfg.Workers,
		FinalsOnly: true,
		Metrics:    reg,
		JobTimeout: s.deadline(sw.TimeoutSeconds),
		Gate: func(ctx context.Context) (func(), error) {
			if _, err := s.acquireSim(ctx); err != nil {
				return nil, err
			}
			return s.releaseSim, nil
		},
		Configure: func(j int, cfg *sim.Config) {
			if ratio := sw.Ratio(lo + j); ratio > 0 {
				cfg.Rates = sim.Rates{Fast: baseRates.Slow * ratio, Slow: baseRates.Slow}
			}
		},
	})
	if runErr != nil {
		var ce *sim.ConfigError
		if errors.As(runErr, &ce) {
			return nil, configError(runErr)
		}
		if cerr := context.Cause(ctx); cerr != nil {
			return nil, errf(statusForCtx(cerr), CodeCanceled, "partition interrupted: %v", runErr)
		}
		return nil, errf(http.StatusUnprocessableEntity, CodeSimFailed, "%v", runErr)
	}

	outs := make([]cluster.Outcome, n)
	for j := range outs {
		o := cluster.Outcome{Index: lo + j}
		switch {
		case ens.Errs[j] != nil:
			o.Err = ens.Errs[j].Error()
		case ens.Finals[j] != nil:
			final := make(map[string]float64, len(ens.Names))
			if len(sw.Record) > 0 {
				for _, name := range sw.Record {
					if col, ok := ens.Index(name); ok {
						final[name] = ens.Finals[j][col]
					}
				}
			} else {
				for col, name := range ens.Names {
					final[name] = ens.Finals[j][col]
				}
			}
			o.Final = final
		default:
			o.Err = "skipped: partition ended before this point started"
		}
		outs[j] = o
	}
	return outs, nil
}
