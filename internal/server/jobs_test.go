package server

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"
)

// quickJob is a sweep that finishes in milliseconds.
func quickJob() JobRequest {
	return JobRequest{
		CRN: "init X = 1\nX -> Y : slow", TEnd: 2,
		Method: "ssa", Unit: 50, Seed: 11, Runs: 4,
	}
}

// longJob is a sweep whose points take minutes unless canceled.
func longJob(t testing.TB) JobRequest {
	return JobRequest{CRN: clockText(t), TEnd: 1e6, Fast: 300, Slow: 1, Runs: 8}
}

// pollJob polls GET /v1/jobs/{id} until the job reaches a terminal state.
func pollJob(t testing.TB, h http.Handler, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec := do(t, h, "GET", "/v1/jobs/"+id, nil)
		if rec.Code != 200 {
			t.Fatalf("job status %d: %s", rec.Code, rec.Body.String())
		}
		st := decode[JobStatus](t, rec)
		if st.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal after 30s: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobLifecycle: submit → 202 with Location → poll to done → per-point
// results with derived seeds; an identical resubmission reproduces the exact
// same finals (the sweep is deterministic from the request alone).
func TestJobLifecycle(t *testing.T) {
	s := New(Config{})
	run := func() JobStatus {
		rec := do(t, s.Handler(), "POST", "/v1/jobs", quickJob())
		if rec.Code != 202 {
			t.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
		}
		st := decode[JobStatus](t, rec)
		if loc := rec.Header().Get("Location"); loc != "/v1/jobs/"+st.ID {
			t.Fatalf("Location %q for job %s", loc, st.ID)
		}
		return pollJob(t, s.Handler(), st.ID)
	}

	first := run()
	if first.State != "done" || first.Completed != 4 || first.Failed != 0 || first.Total != 4 {
		t.Fatalf("unexpected final status: %+v", first)
	}
	if len(first.Results) != 4 {
		t.Fatalf("%d results, want 4", len(first.Results))
	}
	for i, p := range first.Results {
		if p.Index != i || p.Err != "" || len(p.Final) == 0 {
			t.Fatalf("result %d malformed: %+v", i, p)
		}
		if p.Final["X"]+p.Final["Y"] != 1 {
			t.Fatalf("result %d does not conserve mass: %+v", i, p.Final)
		}
	}

	second := run()
	for i := range first.Results {
		a, b := first.Results[i], second.Results[i]
		if a.Seed != b.Seed {
			t.Fatalf("point %d seeds differ across identical jobs: %d vs %d", i, a.Seed, b.Seed)
		}
		for name, v := range a.Final {
			if b.Final[name] != v {
				t.Fatalf("point %d final[%s] differs: %v vs %v", i, name, v, b.Final[name])
			}
		}
	}
}

// TestJobRatioSweep: the ratio × runs cross product, with per-point ratios
// reported and the record projection applied.
func TestJobRatioSweep(t *testing.T) {
	s := New(Config{})
	rec := do(t, s.Handler(), "POST", "/v1/jobs", JobRequest{
		CRN: "init A = 1\nA -> B : slow\nB -> C : fast", TEnd: 5,
		Ratios: []float64{1, 10, 100}, Runs: 2, Record: []string{"C"},
	})
	if rec.Code != 202 {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
	}
	st := pollJob(t, s.Handler(), decode[JobStatus](t, rec).ID)
	if st.State != "done" || st.Total != 6 || st.Completed != 6 {
		t.Fatalf("unexpected final status: %+v", st)
	}
	wantRatios := []float64{1, 1, 10, 10, 100, 100}
	for i, p := range st.Results {
		if p.Ratio != wantRatios[i] {
			t.Errorf("point %d ratio %g, want %g", i, p.Ratio, wantRatios[i])
		}
		if len(p.Final) != 1 {
			t.Errorf("point %d finals %v, want only C", i, p.Final)
		}
	}
}

// TestJobCancel: DELETE aborts a long-running sweep promptly; never-started
// points keep their explanatory skipped marker, and cancellation is
// idempotent.
func TestJobCancel(t *testing.T) {
	s := New(Config{MaxConcurrentSims: 2, Workers: 2})
	rec := do(t, s.Handler(), "POST", "/v1/jobs", longJob(t))
	if rec.Code != 202 {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
	}
	id := decode[JobStatus](t, rec).ID

	if rec := do(t, s.Handler(), "DELETE", "/v1/jobs/"+id, nil); rec.Code != 200 {
		t.Fatalf("cancel status %d: %s", rec.Code, rec.Body.String())
	}
	st := pollJob(t, s.Handler(), id)
	if st.State != "canceled" {
		t.Fatalf("state %q after cancel, want canceled", st.State)
	}
	if st.Completed == st.Total {
		t.Fatal("every point completed; cancellation had no effect")
	}
	skipped := 0
	for _, p := range st.Results {
		if p.Err == "skipped: job ended before this point started" {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("no point kept its skipped marker")
	}
	// Canceling again is a no-op reporting the same final state.
	rec = do(t, s.Handler(), "DELETE", "/v1/jobs/"+id, nil)
	if rec.Code != 200 || decode[JobStatus](t, rec).State != "canceled" {
		t.Fatalf("repeat cancel: status %d body %s", rec.Code, rec.Body.String())
	}
}

// TestJobValidation: the submit-side error surface.
func TestJobValidation(t *testing.T) {
	s := New(Config{Limits: Limits{MaxSweepPoints: 4}})
	cases := []struct {
		name   string
		req    JobRequest
		status int
		code   string
	}{
		{"missing crn", JobRequest{TEnd: 5}, 400, CodeInvalidRequest},
		{"bad crn", JobRequest{CRN: "X ->", TEnd: 5}, 400, CodeInvalidRequest},
		{"ratio below one", JobRequest{CRN: "init X = 1\nX -> Y : slow", TEnd: 5, Ratios: []float64{0.5}}, 400, CodeInvalidRequest},
		{"sweep too large", JobRequest{CRN: "init X = 1\nX -> Y : slow", TEnd: 5, Runs: 5}, 422, CodeLimitExceeded},
	}
	for _, c := range cases {
		rec := do(t, s.Handler(), "POST", "/v1/jobs", c.req)
		if rec.Code != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, rec.Code, c.status, rec.Body.String())
			continue
		}
		if got := decode[errorBody](t, rec).Error.Code; got != c.code {
			t.Errorf("%s: code %q, want %q", c.name, got, c.code)
		}
	}
	if rec := do(t, s.Handler(), "GET", "/v1/jobs/job-999999", nil); rec.Code != 404 {
		t.Errorf("unknown job status %d, want 404", rec.Code)
	}
	if rec := do(t, s.Handler(), "DELETE", "/v1/jobs/job-999999", nil); rec.Code != 404 {
		t.Errorf("unknown job cancel %d, want 404", rec.Code)
	}
}

// TestJobActiveLimit: admission control rejects with 429 once the active-job
// cap is reached, and frees the slot when the job ends.
func TestJobActiveLimit(t *testing.T) {
	s := New(Config{Limits: Limits{MaxActiveJobs: 1}, MaxConcurrentSims: 1, Workers: 1})
	rec := do(t, s.Handler(), "POST", "/v1/jobs", longJob(t))
	if rec.Code != 202 {
		t.Fatalf("first submit status %d", rec.Code)
	}
	id := decode[JobStatus](t, rec).ID

	rec = do(t, s.Handler(), "POST", "/v1/jobs", quickJob())
	if rec.Code != 429 || decode[errorBody](t, rec).Error.Code != CodeUnavailable {
		t.Fatalf("second submit: status %d body %s", rec.Code, rec.Body.String())
	}

	do(t, s.Handler(), "DELETE", "/v1/jobs/"+id, nil)
	pollJob(t, s.Handler(), id)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if rec := do(t, s.Handler(), "POST", "/v1/jobs", quickJob()); rec.Code == 202 {
			pollJob(t, s.Handler(), decode[JobStatus](t, rec).ID)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admission slot never freed after the first job ended")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobRetention: finished jobs beyond RetainJobs are evicted oldest-first
// while recent ones stay queryable.
func TestJobRetention(t *testing.T) {
	s := New(Config{RetainJobs: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		rec := do(t, s.Handler(), "POST", "/v1/jobs", quickJob())
		if rec.Code != 202 {
			t.Fatalf("submit %d status %d", i, rec.Code)
		}
		id := decode[JobStatus](t, rec).ID
		pollJob(t, s.Handler(), id)
		ids = append(ids, id)
	}
	// Retirement runs on the completion watcher; give eviction a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if rec := do(t, s.Handler(), "GET", "/v1/jobs/"+ids[0], nil); rec.Code == 404 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("oldest job %s never evicted", ids[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rec := do(t, s.Handler(), "GET", "/v1/jobs/"+ids[3], nil); rec.Code != 200 {
		t.Fatalf("newest job %s not queryable: %d", ids[3], rec.Code)
	}
}

// TestJobsConcurrent exercises the store under the race detector: parallel
// submission, status polling, cancellation and listing all interleave.
func TestJobsConcurrent(t *testing.T) {
	s := New(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := quickJob()
			req.Seed = int64(g + 1)
			rec := do(t, s.Handler(), "POST", "/v1/jobs", req)
			if rec.Code != 202 {
				t.Errorf("goroutine %d: submit status %d", g, rec.Code)
				return
			}
			id := decode[JobStatus](t, rec).ID
			if g%2 == 0 {
				do(t, s.Handler(), "DELETE", "/v1/jobs/"+id, nil)
			}
			st := pollJob(t, s.Handler(), id)
			if st.State != "done" && st.State != "canceled" {
				t.Errorf("goroutine %d: state %q", g, st.State)
			}
			do(t, s.Handler(), "GET", "/v1/jobs", nil)
			do(t, s.Handler(), "GET", "/metrics", nil)
		}(g)
	}
	wg.Wait()
	// The completion watchers settle the gauges shortly after the handles
	// report done; poll rather than assert a racy instant.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := s.Registry().Snapshot()
		if snap["server_jobs_active"] == 0 && snap["server_job_points_pending"] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges never settled: active=%g pending=%g",
				snap["server_jobs_active"], snap["server_job_points_pending"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrain: graceful shutdown rejects new work, lets quick jobs finish, and
// force-cancels jobs that exceed the drain budget.
func TestDrain(t *testing.T) {
	s := New(Config{MaxConcurrentSims: 2, Workers: 2})
	rec := do(t, s.Handler(), "POST", "/v1/jobs", longJob(t))
	if rec.Code != 202 {
		t.Fatalf("submit status %d", rec.Code)
	}
	id := decode[JobStatus](t, rec).ID

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if forced := s.Drain(ctx); forced != 1 {
		t.Fatalf("Drain force-canceled %d jobs, want 1", forced)
	}
	st := pollJob(t, s.Handler(), id)
	if st.State != "canceled" {
		t.Fatalf("state %q after drain, want canceled", st.State)
	}
	if rec := do(t, s.Handler(), "POST", "/v1/jobs", quickJob()); rec.Code != 503 {
		t.Fatalf("submit while draining: status %d, want 503", rec.Code)
	}
}

// TestDrainIdle: draining an idle server returns immediately with nothing
// forced.
func TestDrainIdle(t *testing.T) {
	s := New(Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if forced := s.Drain(ctx); forced != 0 {
		t.Fatalf("idle Drain forced %d", forced)
	}
}
