package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
)

// coordinatorWith builds a coordinator server plus n worker nodes on real
// loopback listeners, already joined. The heartbeat timeout is an hour so
// membership never flaps on test timing — worker death is injected as
// connection failure, the same signal a crashed process produces.
func coordinatorWith(t *testing.T, n int, workerCfg Config, opts cluster.Options) (*Server, []*httptest.Server) {
	t.Helper()
	if opts.HeartbeatEvery == 0 {
		opts.HeartbeatEvery = 20 * time.Millisecond // fast rescheduling ticker
	}
	if opts.HeartbeatTimeout == 0 {
		opts.HeartbeatTimeout = time.Hour
	}
	coord := New(Config{Cluster: &opts})
	var workers []*httptest.Server
	for i := 0; i < n; i++ {
		ws := httptest.NewServer(New(workerCfg).Handler())
		t.Cleanup(ws.Close)
		coord.Coordinator().Join(cluster.JoinRequest{ID: fmt.Sprintf("w%d", i), Addr: ws.URL})
		workers = append(workers, ws)
	}
	return coord, workers
}

// submitAndWait runs one job to a terminal state through a server's handler.
func submitAndWait(t *testing.T, s *Server, req JobRequest) JobStatus {
	t.Helper()
	rec := do(t, s.Handler(), "POST", "/v1/jobs", req)
	if rec.Code != 202 {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
	}
	return pollJob(t, s.Handler(), decode[JobStatus](t, rec).ID)
}

// TestClusterGoldenBitIdentical is the acceptance proof of the deterministic
// sharding contract: the same sweep executed single-node, on a 1-worker
// cluster, on a 3-worker cluster, and on a 3-worker cluster where one worker
// dies after its first partition, produces byte-identical results.
func TestClusterGoldenBitIdentical(t *testing.T) {
	req := JobRequest{
		CRN: clockText(t), TEnd: 60, Fast: 300, Slow: 1,
		Method: "ssa", Seed: 42, Runs: 4, Ratios: []float64{100, 300, 600},
	} // 12 points with a live ratio axis: the fast rate genuinely differs per ratio

	single := submitAndWait(t, New(Config{}), req)
	if single.State != "done" {
		t.Fatalf("single-node job ended %q: %s", single.State, single.Error)
	}
	golden, err := json.Marshal(single.Results)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			coord, _ := coordinatorWith(t, n, Config{}, cluster.Options{})
			st := submitAndWait(t, coord, req)
			if st.State != "done" || st.Completed != single.Completed || st.Failed != single.Failed {
				t.Fatalf("cluster job: state=%q completed=%d failed=%d, single-node: %q/%d/%d",
					st.State, st.Completed, st.Failed, single.State, single.Completed, single.Failed)
			}
			got, _ := json.Marshal(st.Results)
			if string(got) != string(golden) {
				t.Fatalf("merged results differ from single-node execution\n got: %s\nwant: %s", got, golden)
			}
			// Worker telemetry folded into the coordinator registry under node labels.
			found := false
			for name := range coord.Registry().Snapshot() {
				if strings.Contains(name, `node="w0"`) {
					found = true
					break
				}
			}
			if !found {
				t.Fatal("no node-labelled worker metrics merged into the coordinator registry")
			}
		})
	}

	t.Run("workers=3/one-dies", func(t *testing.T) {
		coord, _ := coordinatorWith(t, 2, Config{}, cluster.Options{})
		// A third worker that serves exactly one partition, then fails every
		// further dispatch — a node crashing mid-job, as the coordinator's
		// HTTP client sees it.
		dying := New(Config{})
		var served atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/cluster/v1/partition" && served.Add(1) > 1 {
				http.Error(w, "worker died", http.StatusInternalServerError)
				return
			}
			dying.Handler().ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		coord.Coordinator().Join(cluster.JoinRequest{ID: "w2-dying", Addr: srv.URL})

		st := submitAndWait(t, coord, req)
		if st.State != "done" {
			t.Fatalf("job with dying worker ended %q: %s", st.State, st.Error)
		}
		got, _ := json.Marshal(st.Results)
		if string(got) != string(golden) {
			t.Fatalf("results after worker death differ from single-node execution\n got: %s\nwant: %s", got, golden)
		}
		snap := coord.Registry().Snapshot()
		if snap["cluster_partition_retries_total"] == 0 {
			t.Fatal("worker death caused no recorded partition retries")
		}
	})
}

// TestClusterCoordinatorDrain: draining the coordinator while partitions are
// in flight force-cancels the job cleanly — terminal state, no goroutine left
// waiting on a worker.
func TestClusterCoordinatorDrain(t *testing.T) {
	// The worker stalls each partition 200ms (the scale-model delay knob), so
	// the job is reliably mid-flight when the drain begins.
	coord, _ := coordinatorWith(t, 1, Config{PartitionDelay: 200 * time.Millisecond}, cluster.Options{})
	rec := do(t, coord.Handler(), "POST", "/v1/jobs", quickJob())
	if rec.Code != 202 {
		t.Fatalf("submit status %d", rec.Code)
	}
	id := decode[JobStatus](t, rec).ID

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if forced := coord.Drain(ctx); forced != 1 {
		t.Fatalf("Drain forced %d jobs, want 1", forced)
	}
	st := pollJob(t, coord.Handler(), id)
	if st.State != "canceled" {
		t.Fatalf("state %q after coordinator drain, want canceled", st.State)
	}
}

// TestJobCanceledWhileQueued is the regression test for the queued-job
// lifecycle: a job canceled before its first point ever starts must still
// reach a terminal state, keep its skip markers (not failures), release the
// jobs_queued gauge, and be retention-evicted like any finished job.
func TestJobCanceledWhileQueued(t *testing.T) {
	s := New(Config{MaxConcurrentSims: 1, Workers: 1, RetainJobs: 1})

	// Occupy the only simulation slot so the next job stays queued.
	rec := do(t, s.Handler(), "POST", "/v1/jobs", longJob(t))
	blocker := decode[JobStatus](t, rec).ID
	waitState(t, s, blocker, "running")

	rec = do(t, s.Handler(), "POST", "/v1/jobs", quickJob())
	if rec.Code != 202 {
		t.Fatalf("submit status %d", rec.Code)
	}
	queued := decode[JobStatus](t, rec)
	if queued.State != "queued" {
		t.Fatalf("second job admitted as %q, want queued", queued.State)
	}
	if m := metricsText(t, s); !strings.Contains(m, "jobs_queued 1") {
		t.Fatalf("/metrics while queued lacks jobs_queued 1:\n%s", m)
	}

	if rec := do(t, s.Handler(), "DELETE", "/v1/jobs/"+queued.ID, nil); rec.Code != 200 {
		t.Fatalf("cancel queued job: %d", rec.Code)
	}
	st := pollJob(t, s.Handler(), queued.ID)
	if st.State != "canceled" {
		t.Fatalf("canceled-while-queued job ended %q, want canceled", st.State)
	}
	if st.Completed != 0 || st.Failed != 0 {
		t.Fatalf("queued job counted work: completed=%d failed=%d", st.Completed, st.Failed)
	}
	for _, r := range st.Results {
		if !strings.HasPrefix(r.Err, "skipped") {
			t.Fatalf("point %d of a never-started job: %q, want a skipped marker", r.Index, r.Err)
		}
	}
	if m := metricsText(t, s); !strings.Contains(m, "jobs_queued 0") {
		t.Fatalf("jobs_queued gauge not released:\n%s", m)
	}

	// Unblock the slot and push more finished jobs through; with RetainJobs 1
	// the canceled-while-queued job must age out of retention like any other
	// finished job (the regression left it unretired and unevictable).
	do(t, s.Handler(), "DELETE", "/v1/jobs/"+blocker, nil)
	submitAndWait(t, s, quickJob())
	submitAndWait(t, s, quickJob())
	deadline := time.Now().Add(5 * time.Second)
	for {
		if rec := do(t, s.Handler(), "GET", "/v1/jobs/"+queued.ID, nil); rec.Code == 404 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled-while-queued job %s never retention-evicted", queued.ID)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitState polls one job until it reports the wanted live state.
func waitState(t *testing.T, s *Server, id, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := do(t, s.Handler(), "GET", "/v1/jobs/"+id, nil)
		if st := decode[JobStatus](t, rec); st.State == want {
			return
		} else if st.terminal() {
			t.Fatalf("job %s went terminal (%q) while waiting for %q", id, st.State, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %q", id, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// metricsText fetches the Prometheus exposition.
func metricsText(t *testing.T, s *Server) string {
	t.Helper()
	rec := do(t, s.Handler(), "GET", "/metrics", nil)
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	return rec.Body.String()
}

// TestClusterMetricsExposition: the cluster metric families exist on a
// coordinator from construction (so dashboards can rely on them) and the
// worker-state gauges track membership.
func TestClusterMetricsExposition(t *testing.T) {
	coord, _ := coordinatorWith(t, 2, Config{}, cluster.Options{})
	m := metricsText(t, coord)
	for _, want := range []string{
		`cluster_workers{state="alive"} 2`,
		`cluster_workers{state="lost"} 0`,
		`cluster_workers{state="left"} 0`,
		"cluster_partition_retries_total 0",
		"cluster_partitions_dispatched_total 0",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q:\n%s", want, m)
		}
	}
	coord.Coordinator().Leave("w0")
	if m := metricsText(t, coord); !strings.Contains(m, `cluster_workers{state="left"} 1`) {
		t.Errorf("left gauge not updated:\n%s", m)
	}
}

// TestMetricsExpiresSilentWorkers is the regression test for stale
// cluster_workers gauges: membership expiry is lazy (evaluated on access),
// so on an idle coordinator a scrape used to keep reporting a long-dead
// worker as alive forever — nothing between scrapes ever touched the
// membership. /metrics must itself refresh membership before reading.
func TestMetricsExpiresSilentWorkers(t *testing.T) {
	coord := New(Config{Cluster: &cluster.Options{
		HeartbeatEvery:   5 * time.Millisecond,
		HeartbeatTimeout: 20 * time.Millisecond,
	}})
	coord.Coordinator().Join(cluster.JoinRequest{ID: "w0", Addr: "http://127.0.0.1:1"})
	if m := metricsText(t, coord); !strings.Contains(m, `cluster_workers{state="alive"} 1`) {
		t.Fatalf("joined worker not alive:\n%s", m)
	}

	// The worker never beats again. No job, no dashboard, no membership API
	// call — the next scrape is the only access, and it alone must observe
	// the expiry.
	time.Sleep(50 * time.Millisecond)
	m := metricsText(t, coord)
	if !strings.Contains(m, `cluster_workers{state="lost"} 1`) ||
		!strings.Contains(m, `cluster_workers{state="alive"} 0`) {
		t.Fatalf("scrape did not expire the silent worker:\n%s", m)
	}
}

// TestStatuszClusterPanel: the operator dashboard renders the worker table
// and partition map on a coordinator, and omits the panel entirely on a
// plain node.
func TestStatuszClusterPanel(t *testing.T) {
	plain := New(Config{})
	rec := do(t, plain.DebugHandler(), "GET", "/debug/statusz", nil)
	if rec.Code != 200 || strings.Contains(rec.Body.String(), "<h2>Cluster</h2>") {
		t.Fatalf("plain node statusz: code %d, cluster panel present=%v",
			rec.Code, strings.Contains(rec.Body.String(), "<h2>Cluster</h2>"))
	}

	coord, _ := coordinatorWith(t, 1, Config{}, cluster.Options{})
	body := do(t, coord.DebugHandler(), "GET", "/debug/statusz", nil).Body.String()
	if !strings.Contains(body, "<h2>Cluster</h2>") || !strings.Contains(body, "w0") {
		t.Fatalf("coordinator statusz lacks the cluster worker table:\n%s", body)
	}

	// With a sweep in flight the partition map appears; the worker's 200ms
	// stall keeps chunks visibly running.
	slow, _ := coordinatorWith(t, 1, Config{PartitionDelay: 200 * time.Millisecond}, cluster.Options{})
	rec = do(t, slow.Handler(), "POST", "/v1/jobs", quickJob())
	id := decode[JobStatus](t, rec).ID
	deadline := time.Now().Add(5 * time.Second)
	for {
		body := do(t, slow.DebugHandler(), "GET", "/debug/statusz", nil).Body.String()
		if strings.Contains(body, "running") && strings.Contains(body, "[0,") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("partition map never rendered:\n%s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	pollJob(t, slow.Handler(), id)
}
