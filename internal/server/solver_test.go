package server

import (
	"strings"
	"testing"

	"repro/internal/obs/span"
)

// stiffCRN is the fast-equilibrium-with-slow-drain network used across the
// solver tests; how punishing it is for an explicit method scales with the
// request's fast rate.
const stiffCRN = "init A = 1\nA -> B : fast\nB -> A : fast\nB -> C : slow"

// TestSimulateSolverValidation: the solver field is validated at the edge
// (unknown names), scoped to CRN mode, and cross-checked against the method
// by sim.Config validation with a field-level diagnostic.
func TestSimulateSolverValidation(t *testing.T) {
	s := New(Config{})

	rec := do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
		CRN: stiffCRN, TEnd: 5, Solver: "bogus",
	})
	if rec.Code != 400 || decode[errorBody](t, rec).Error.Code != CodeInvalidRequest {
		t.Errorf("unknown solver: status %d body %s", rec.Code, rec.Body.String())
	}

	rec = do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
		Experiment: "E1", Solver: "stiff",
	})
	if rec.Code != 400 || decode[errorBody](t, rec).Error.Code != CodeInvalidRequest {
		t.Errorf("solver in experiment mode: status %d body %s", rec.Code, rec.Body.String())
	}

	rec = do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
		CRN: stiffCRN, TEnd: 5, Method: "ssa", Solver: "stiff", Seed: 1,
	})
	body := decode[errorBody](t, rec)
	if rec.Code != 400 || body.Error.Code != CodeInvalidRequest {
		t.Fatalf("stiff solver on ssa: status %d body %s", rec.Code, rec.Body.String())
	}
	if len(body.Error.Fields) != 1 || body.Error.Fields[0].Field != "Solver" {
		t.Errorf("fields = %+v, want one diagnostic on Solver", body.Error.Fields)
	}

	// The aliases parse and run like their canonical names.
	for _, alias := range []string{"rosenbrock", "dp5", "auto"} {
		rec = do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
			CRN: stiffCRN, TEnd: 5, Solver: alias,
		})
		if rec.Code != 200 {
			t.Errorf("solver alias %q: status %d body %s", alias, rec.Code, rec.Body.String())
		}
	}
}

// TestSimulateStiffnessEnvelope: when the explicit integrator's step size
// collapses under stiffness, the opaque sim failure becomes a structured 422
// with code "stiffness" pointing at the solver knob — and following the hint
// (dropping the forced explicit solver) makes the identical request succeed.
func TestSimulateStiffnessEnvelope(t *testing.T) {
	s := New(Config{})
	// A = B starts on the fast manifold, so the stiff method needs no
	// transient resolution; the long horizon puts the explicit method's
	// stability-limited step (~3/Fast) below its MinStep (t_end·1e-14),
	// collapsing it within a handful of rejections.
	req := SimulateRequest{
		CRN:  "init A = 1\ninit B = 1\nA -> B : fast\nB -> A : fast\nB -> C : slow",
		TEnd: 1e6, Fast: 1e9, Slow: 1, Solver: "explicit",
	}
	rec := do(t, s.Handler(), "POST", "/v1/simulate", req)
	body := decode[errorBody](t, rec)
	if rec.Code != 422 || body.Error.Code != CodeStiffness {
		t.Fatalf("explicit on harshly stiff system: status %d body %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(body.Error.Message, `"solver":"stiff"`) {
		t.Errorf("message does not point at the solver knob: %q", body.Error.Message)
	}
	if len(body.Error.Fields) != 1 || body.Error.Fields[0].Field != "solver" {
		t.Errorf("fields = %+v, want one diagnostic on solver", body.Error.Fields)
	}

	// The hinted fix works: auto (the default) switches and completes.
	req.Solver = ""
	if rec := do(t, s.Handler(), "POST", "/v1/simulate", req); rec.Code != 200 {
		t.Fatalf("auto on the same system: status %d body %s", rec.Code, rec.Body.String())
	}
}

// TestSimulateSolverCacheKey: the solver participates in the response cache
// key — explicit and stiff trajectories agree only to tolerance, so the same
// CRN under a different solver must be a fresh miss, while repeating a solver
// hits.
func TestSimulateSolverCacheKey(t *testing.T) {
	s := New(Config{})
	var caches []string
	for _, solver := range []string{"explicit", "stiff", "auto", "explicit"} {
		rec := do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
			CRN: stiffCRN, TEnd: 10, Fast: 500, Slow: 1, Solver: solver,
		})
		if rec.Code != 200 {
			t.Fatalf("solver %q: status %d body %s", solver, rec.Code, rec.Body.String())
		}
		caches = append(caches, rec.Header().Get("X-Cache"))
	}
	if got, want := strings.Join(caches, " "), "miss miss miss hit"; got != want {
		t.Fatalf("X-Cache sequence %q, want %q", got, want)
	}
}

// TestSimulateStiffObservability is the end-to-end proof that a stiff run is
// visible from the outside: the ode_stiff_* metric families appear on
// /metrics and the solver decision lands on the request's trace in
// /debug/tracez.
func TestSimulateStiffObservability(t *testing.T) {
	s := New(Config{})

	// A forced stiff run, then an auto run harsh enough to switch.
	rec := do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
		CRN: stiffCRN, TEnd: 20, Fast: 1000, Slow: 1, Solver: "stiff",
	})
	if rec.Code != 200 {
		t.Fatalf("stiff run: status %d body %s", rec.Code, rec.Body.String())
	}
	tid, _, err := span.ParseTraceparent(rec.Header().Get("traceparent"))
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
		CRN: stiffCRN, TEnd: 50, Fast: 2e5, Slow: 1,
	}); rec.Code != 200 {
		t.Fatalf("auto run: status %d body %s", rec.Code, rec.Body.String())
	}

	metrics := do(t, s.Handler(), "GET", "/metrics", nil)
	if metrics.Code != 200 {
		t.Fatalf("metrics status %d", metrics.Code)
	}
	mbody := metrics.Body.String()
	for _, want := range []string{
		`ode_solver_runs_total{solver="stiff"} 1`,
		`ode_solver_runs_total{solver="auto"} 1`,
		"ode_stiff_switches_total 1",
		"ode_stiff_switch_t ",
		"ode_stiff_steps_total",
		"ode_stiff_jacobians_total",
		"ode_stiff_factorizations_total",
		"ode_stiff_solves_total",
	} {
		if !strings.Contains(mbody, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	otlp := do(t, s.Handler(), "GET", "/debug/tracez?trace="+tid.String(), nil)
	if otlp.Code != 200 {
		t.Fatalf("tracez status %d: %s", otlp.Code, otlp.Body.String())
	}
	tbody := otlp.Body.String()
	for _, want := range []string{"ode.solver", "stiff", "ode.jac_evals", "ode.factorizations"} {
		if !strings.Contains(tbody, want) {
			t.Errorf("trace export missing %q", want)
		}
	}
}
