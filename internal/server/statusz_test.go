package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs/tsdb"
)

// TestStatuszRenders drives a real request through the public handler first,
// then checks /debug/statusz renders every dashboard section with live data:
// health, caches, jobs, clock alerts, resource attribution and runtime.
func TestStatuszRenders(t *testing.T) {
	s := New(Config{})
	api := httptest.NewServer(s.Handler())
	defer api.Close()
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	// One cache miss + one hit so the cache table has nonzero numbers, and
	// one attributed request so the attribution table is populated.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(api.URL+"/v1/simulate", "application/json",
			strings.NewReader(`{"crn":"init X = 1\nX -> Y : slow","t_end":1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("simulate %d: %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(dbg.URL + "/debug/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("statusz: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"<h2>Health</h2>", "<h2>Caches</h2>", "<h2>Jobs</h2>",
		"<h2>Clock alerts</h2>", "<h2>Resource attribution</h2>",
		"<h2>Runtime</h2>", "<h2>Recent traces</h2>",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("statusz missing %q", want)
		}
	}
	if !strings.Contains(body, "serving") {
		t.Error("health section does not report serving state")
	}
	// The repeated simulate is a response-cache hit.
	if !strings.Contains(body, "response") || !strings.Contains(body, "network") {
		t.Error("cache table missing the two caches")
	}
	// The cache-miss request did real kernel work, so attribution renders a
	// simulate row rather than the placeholder.
	if strings.Contains(body, "no attributed work yet") {
		t.Error("attribution section empty after an uncached simulate")
	}
	if !strings.Contains(body, "simulate") {
		t.Error("attribution table missing the simulate kind")
	}
	// The proc collector runs by default, so the runtime section has a
	// sample with sparkline markup.
	if strings.Contains(body, "proc collector disabled") {
		t.Error("runtime section reports collector disabled under default config")
	}
	// The two API requests were traced.
	if strings.Contains(body, "no traces yet") {
		t.Error("recent traces empty after two API requests")
	}
}

// TestStatuszCollectorDisabled: ProcSampleEvery < 0 turns the collector off
// and the page must say so instead of breaking.
func TestStatuszCollectorDisabled(t *testing.T) {
	s := New(Config{ProcSampleEvery: -1})
	rec := httptest.NewRecorder()
	s.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/statusz", nil))
	if rec.Code != 200 {
		t.Fatalf("statusz: %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "proc collector disabled") {
		t.Error("disabled collector not reported")
	}
}

// TestDebugHandlerRoutes: the pprof surface and metrics mirror answer on the
// debug mux, and none of it leaks onto the public handler.
func TestDebugHandlerRoutes(t *testing.T) {
	s := New(Config{})
	dbg := s.DebugHandler()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/metrics", "/debug/tracez"} {
		rec := httptest.NewRecorder()
		dbg.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("debug %s: %d", path, rec.Code)
		}
	}
	pub := s.Handler()
	for _, path := range []string{"/debug/statusz", "/debug/pprof/", "/debug/pprof/profile"} {
		rec := httptest.NewRecorder()
		pub.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("public %s: %d, want 404", path, rec.Code)
		}
	}
}

// TestSparkline pins the renderer: scaling to the series range, flat series,
// empty series.
func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Errorf("empty series = %q", got)
	}
	if got := sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Errorf("flat series = %q", got)
	}
	got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp = %q", got)
	}
}

// TestPointDeltas: cumulative series turn into per-step increments with
// negative excursions clamped.
func TestPointDeltas(t *testing.T) {
	var pts []tsdb.Point
	for _, v := range []float64{10, 12, 12, 20, 19} {
		pts = append(pts, tsdb.Point{Value: v})
	}
	got := pointDeltas(pts)
	want := []float64{2, 0, 8, 0}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("delta[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if got := pointDeltas(pts[:1]); got != nil {
		t.Errorf("single-point delta = %v", got)
	}
}
