package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
)

// sseReader incrementally parses text/event-stream frames off a live response.
type sseReader struct {
	sc *bufio.Scanner
}

func newSSEReader(body *bufio.Scanner) *sseReader { return &sseReader{sc: body} }

// next blocks until one complete SSE frame arrives (comments and the retry
// hint are skipped) and returns its event name and decoded data object.
func (r *sseReader) next(t testing.TB) (string, obs.StreamEvent) {
	t.Helper()
	var kind, data string
	for r.sc.Scan() {
		line := r.sc.Text()
		switch {
		case line == "":
			if kind == "" && data == "" {
				continue // separator after the retry hint or a comment
			}
			var ev obs.StreamEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			return kind, ev
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	t.Fatalf("SSE stream ended early (scan err %v)", r.sc.Err())
	return "", obs.StreamEvent{}
}

// openSSE connects to an SSE endpoint on a live test server and returns the
// frame reader plus the response for header checks.
func openSSE(t testing.TB, url string) (*sseReader, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != 200 {
		t.Fatalf("SSE connect: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("SSE content type %q", ct)
	}
	return newSSEReader(bufio.NewScanner(resp.Body)), resp
}

// slowSweep is a four-point ODE sweep of the clock whose points each take
// tens of milliseconds on one worker — long enough for an SSE client that
// connects right after submission to observe progress mid-run.
func slowSweep(t testing.TB) JobRequest {
	return JobRequest{CRN: clockText(t), TEnd: 150, Fast: 300, Slow: 1, Runs: 4}
}

// TestJobEventsSSE is the streaming acceptance test: submit a sweep, connect
// to /v1/jobs/{id}/events while it runs, and require a job_status snapshot,
// at least one live job_progress event with done < total, and a terminal
// job_done whose counters match the final job status. Afterwards the exported
// trace must show the HTTP request span parenting the job span, which parents
// one batch.job span per point carrying queue-wait and duration attributes,
// each parenting a sim span.
func TestJobEventsSSE(t *testing.T) {
	s := New(Config{Workers: 1, MaxConcurrentSims: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, err := json.Marshal(slowSweep(t))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	traceparent := resp.Header.Get("traceparent")
	tid, _, err := span.ParseTraceparent(traceparent)
	if err != nil {
		t.Fatalf("submit traceparent %q: %v", traceparent, err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}

	r, _ := openSSE(t, srv.URL+"/v1/jobs/"+st.ID+"/events")
	kind, first := r.next(t)
	if kind != "job_status" || first.Job != st.ID {
		t.Fatalf("first frame = %s %+v, want job_status", kind, first)
	}

	progress, done := 0, false
	var last obs.StreamEvent
	for !done {
		kind, ev := r.next(t)
		switch kind {
		case "job_progress":
			d, tot := ev.Data["done"].(float64), ev.Data["total"].(float64)
			if d < tot {
				progress++ // a mid-run observation, not the final point
			}
			if ev.Job != st.ID {
				t.Fatalf("progress for wrong job: %+v", ev)
			}
		case "job_done":
			last, done = ev, true
		case "clock_edge", "phase_change", "alert", "job_status":
			// legal interleavings, not what this test pins
		default:
			t.Fatalf("unexpected SSE kind %q: %+v", kind, ev)
		}
	}
	if progress == 0 {
		t.Fatal("no mid-run job_progress event observed")
	}
	if last.Data["state"] != "done" || last.Data["total"].(float64) != 4 {
		t.Fatalf("job_done payload = %+v", last.Data)
	}

	// The trace: poll the span store until the asynchronous job span has
	// landed, then verify the parent/child chain and the timing attributes.
	deadline := time.Now().Add(10 * time.Second)
	var spans []*span.Data
	for {
		spans = s.Tracer().Store().Trace(tid)
		if len(spans) >= 10 { // root + job + 4 batch.job + 4 sim
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s has %d spans, want >= 10", tid, len(spans))
		}
		time.Sleep(5 * time.Millisecond)
	}
	byID := map[span.SpanID]*span.Data{}
	byName := map[string][]*span.Data{}
	for _, sp := range spans {
		byID[sp.SpanID] = sp
		key := sp.Name
		if strings.HasPrefix(key, "batch.job[") {
			key = "batch.job"
		}
		byName[key] = append(byName[key], sp)
	}
	root := byName["HTTP POST /v1/jobs"]
	if len(root) != 1 || !root[0].ParentID.IsZero() {
		t.Fatalf("HTTP root span: %+v", root)
	}
	jobSpans := byName["job "+st.ID]
	if len(jobSpans) != 1 || jobSpans[0].ParentID != root[0].SpanID {
		t.Fatalf("job span not parented under the HTTP span: %+v", jobSpans)
	}
	if len(byName["batch.job"]) != 4 || len(byName["sim.ode"]) != 4 {
		t.Fatalf("per-point spans: %d batch, %d sim", len(byName["batch.job"]), len(byName["sim.ode"]))
	}
	for _, sp := range byName["batch.job"] {
		if sp.ParentID != jobSpans[0].SpanID {
			t.Fatalf("batch span %s not under the job span", sp.Name)
		}
		attrs := map[string]bool{}
		for _, a := range sp.Attrs {
			attrs[a.Key] = true
		}
		if !attrs["job.queue_wait_seconds"] || !attrs["job.seconds"] {
			t.Fatalf("batch span %s missing timing attrs: %+v", sp.Name, sp.Attrs)
		}
	}
	for _, sp := range byName["sim.ode"] {
		parent, ok := byID[sp.ParentID]
		if !ok || !strings.HasPrefix(parent.Name, "batch.job[") {
			t.Fatalf("sim span parented under %q", parent.Name)
		}
	}
}

// TestJobEventsFinishedJob: connecting after completion yields the snapshot
// (terminal state) followed immediately by job_done, then the stream closes.
func TestJobEventsFinishedJob(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	rec := do(t, s.Handler(), "POST", "/v1/jobs", quickJob())
	if rec.Code != 202 {
		t.Fatalf("submit status %d", rec.Code)
	}
	id := decode[JobStatus](t, rec).ID
	pollJob(t, s.Handler(), id)

	r, _ := openSSE(t, srv.URL+"/v1/jobs/"+id+"/events")
	kind, ev := r.next(t)
	if kind != "job_status" || ev.Data["state"] != "done" {
		t.Fatalf("snapshot = %s %+v", kind, ev)
	}
	kind, ev = r.next(t)
	if kind != "job_done" || ev.Data["total"].(float64) != 4 {
		t.Fatalf("terminal frame = %s %+v", kind, ev)
	}
}

// TestJobEventsUnknownJob: the events endpoint 404s like the status endpoint.
func TestJobEventsUnknownJob(t *testing.T) {
	s := New(Config{})
	rec := do(t, s.Handler(), "GET", "/v1/jobs/job-424242/events", nil)
	if rec.Code != 404 || decode[errorBody](t, rec).Error.Code != CodeNotFound {
		t.Fatalf("status %d body %s", rec.Code, rec.Body.String())
	}
}

// TestStreamSSE: the firehose relays job events with the requested kind
// filter applied and keeps running across jobs until the client leaves.
func TestStreamSSE(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	r, resp := openSSE(t, srv.URL+"/v1/stream?kind=job_progress,job_done")
	// The firehose only ends on client disconnect; close before srv.Close()
	// (which waits for open handlers) runs in its deferred position.
	defer resp.Body.Close()
	rec := do(t, s.Handler(), "POST", "/v1/jobs", quickJob())
	if rec.Code != 202 {
		t.Fatalf("submit status %d", rec.Code)
	}
	id := decode[JobStatus](t, rec).ID

	seen := 0
	for {
		kind, ev := r.next(t)
		if kind != "job_progress" && kind != "job_done" {
			t.Fatalf("kind filter leaked %q: %+v", kind, ev)
		}
		if ev.Job != id {
			t.Fatalf("event for unexpected job: %+v", ev)
		}
		seen++
		if kind == "job_done" {
			break
		}
	}
	if seen < 2 { // at least one progress frame plus job_done
		t.Fatalf("only %d frames before job_done", seen)
	}
}

// TestStreamSlowSubscriberDrops pins the broker's drop policy end to end:
// a stalled subscriber loses events instead of stalling publishers, the
// losses are counted in sse_events_dropped_total, and a client that
// reconnects afterwards sees the loss as a gap in the SSE id sequence —
// including for alert events, which share the same firehose.
func TestStreamSlowSubscriberDrops(t *testing.T) {
	s := New(Config{EventBuffer: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	alertEv := func() obs.StreamEvent {
		return obs.StreamEvent{Kind: "alert", Time: time.Now(),
			Data: map[string]any{"rule": "worker-absent", "state": "firing"}}
	}

	// publishUntil keeps publishing until the reader delivers a frame (the
	// handler subscribes only after the headers are flushed, so a single
	// publish can slip into that window) and waits for the publisher to
	// settle before returning, so later drop counts are exact.
	publishUntil := func(r *sseReader) obs.StreamEvent {
		t.Helper()
		stop, done := make(chan struct{}), make(chan struct{})
		go func() {
			defer close(done)
			for {
				s.Broker().Publish(alertEv())
				select {
				case <-stop:
					return
				case <-time.After(5 * time.Millisecond):
				}
			}
		}()
		kind, ev := r.next(t)
		close(stop)
		<-done
		if kind != "alert" || ev.Seq == 0 {
			t.Fatalf("frame = %s %+v", kind, ev)
		}
		return ev
	}

	// First connection: observe one frame, note its id, then "stall" — we
	// stand in for the stalled HTTP connection with a broker subscriber
	// that is never drained (the exact code path the SSE handlers use),
	// because a live socket hides the stall in kernel buffers.
	r1, resp1 := openSSE(t, srv.URL+"/v1/stream?kind=alert")
	first := publishUntil(r1)
	resp1.Body.Close() // client goes away mid-incident

	stalled := s.Broker().Subscribe(1, nil)
	defer stalled.Close()
	dropsBefore := s.Registry().Snapshot()["sse_events_dropped_total"]
	for i := 0; i < 5; i++ {
		s.Broker().Publish(alertEv())
	}
	// Buffer of 1: the first burst event is buffered, the rest are dropped.
	if got := stalled.Dropped(); got != 4 {
		t.Fatalf("stalled subscriber dropped %d events, want 4", got)
	}
	if got := s.Registry().Snapshot()["sse_events_dropped_total"]; got < dropsBefore+4 {
		t.Fatalf("sse_events_dropped_total = %g, want >= %g", got, dropsBefore+4)
	}

	// The reconnecting client: its first frame's id has jumped past the
	// whole lost burst, so the gap is visible without any server help.
	r2, resp2 := openSSE(t, srv.URL+"/v1/stream?kind=alert")
	defer resp2.Body.Close()
	ev := publishUntil(r2)
	if ev.Seq <= first.Seq+1 {
		t.Fatalf("id after reconnect = %d, want a gap past %d", ev.Seq, first.Seq)
	}
}

// TestStreamDrainCloses: StartDrain must terminate open firehose streams so
// graceful shutdown is not held hostage by idle SSE clients.
func TestStreamDrainCloses(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	s.StartDrain()
	closed := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("stream still open 5s after StartDrain")
	}
}

// TestClockHealthJobValidation: a clock_health spec naming unknown species
// must be rejected at submission, before any sweep point runs.
func TestClockHealthJobValidation(t *testing.T) {
	s := New(Config{})
	rec := do(t, s.Handler(), "POST", "/v1/jobs", JobRequest{
		CRN: "init X = 1\nX -> Y : slow", TEnd: 2, Runs: 1,
		ClockHealth: &ClockHealthSpec{
			Phases:    [][]string{{"X"}, {"ghost"}},
			Threshold: 0.5,
		},
	})
	if rec.Code != 400 || decode[errorBody](t, rec).Error.Code != CodeInvalidRequest {
		t.Fatalf("status %d body %s", rec.Code, rec.Body.String())
	}
}

// TestClockHealthJobAlertStream: a job carrying a clock_health spec tuned to
// trip (threshold so low that both species count as occupied at once) must
// push alert events over SSE and count them in /metrics.
func TestClockHealthJobAlertStream(t *testing.T) {
	s := New(Config{Workers: 1, MaxConcurrentSims: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Threshold 0.4 counts both red and green as occupied through every
	// R→G hand-off (where R+G ≈ 1), so overlap episodes recur across the
	// whole run and a client connecting shortly after submit sees them live.
	rec := do(t, s.Handler(), "POST", "/v1/jobs", JobRequest{
		CRN: clockText(t), TEnd: 150, Fast: 300, Slow: 1, Runs: 4,
		ClockHealth: &ClockHealthSpec{
			Phases:    [][]string{{"clk.CR"}, {"clk.CG"}},
			Names:     []string{"red", "green"},
			Threshold: 0.4,
			MaxJitter: -1, // hand-off detection at 0.4 is not a period probe
		},
	})
	if rec.Code != 202 {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
	}
	id := decode[JobStatus](t, rec).ID

	r, _ := openSSE(t, srv.URL+"/v1/jobs/"+id+"/events")
	sawAlert := false
	for {
		kind, ev := r.next(t)
		if kind == "alert" {
			if ev.Data["rule"] == "phase_overlap" {
				sawAlert = true
			}
		}
		if kind == "job_done" {
			break
		}
	}
	if !sawAlert {
		t.Fatal("no phase_overlap alert reached the SSE stream")
	}
	key := obs.Label("clock_alerts_total", "rule", "phase_overlap")
	if got := s.Registry().Snapshot()[key]; got < 1 {
		t.Fatalf("%s = %g, want >= 1", key, got)
	}
}

// TestServerTimingHeader: /v1/simulate reports its phase split — cache miss
// with queue and sim durations, then a pure cache hit.
func TestServerTimingHeader(t *testing.T) {
	s := New(Config{})
	req := SimulateRequest{CRN: "init X = 1\nX -> Y : slow", TEnd: 2}

	miss := do(t, s.Handler(), "POST", "/v1/simulate", req)
	st := miss.Header().Get("Server-Timing")
	if !strings.Contains(st, "cache;desc=miss") ||
		!strings.Contains(st, "queue;dur=") || !strings.Contains(st, "sim;dur=") {
		t.Fatalf("miss Server-Timing = %q", st)
	}
	if ct := miss.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("miss content type %q", ct)
	}

	hit := do(t, s.Handler(), "POST", "/v1/simulate", req)
	if st := hit.Header().Get("Server-Timing"); !strings.Contains(st, "cache;desc=hit") {
		t.Fatalf("hit Server-Timing = %q", st)
	}

	// Error envelopes carry the charset too.
	bad := do(t, s.Handler(), "POST", "/v1/simulate", "{nope")
	if ct := bad.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("error content type %q", ct)
	}
}

// TestTracez: the summary view lists retained traces; ?trace= exports one as
// OTLP/JSON; bad and unknown ids produce the structured error envelope.
func TestTracez(t *testing.T) {
	s := New(Config{})
	rec := do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
		CRN: "init X = 1\nX -> Y : slow", TEnd: 2,
	})
	if rec.Code != 200 {
		t.Fatalf("simulate status %d", rec.Code)
	}
	tid, _, err := span.ParseTraceparent(rec.Header().Get("traceparent"))
	if err != nil {
		t.Fatal(err)
	}

	sum := do(t, s.Handler(), "GET", "/debug/tracez", nil)
	if sum.Code != 200 {
		t.Fatalf("tracez status %d", sum.Code)
	}
	view := decode[struct {
		Retained int                 `json:"spans_retained"`
		Total    int                 `json:"spans_total"`
		Recent   []span.TraceSummary `json:"recent"`
		Slowest  []span.TraceSummary `json:"slowest"`
	}](t, sum)
	if view.Retained < 1 || view.Total < view.Retained || len(view.Recent) == 0 {
		t.Fatalf("tracez view = %+v", view)
	}
	found := false
	for _, tr := range view.Recent {
		if tr.TraceID == tid {
			found = true
			if tr.Root != "HTTP POST /v1/simulate" || tr.Spans < 2 {
				t.Fatalf("trace summary = %+v", tr)
			}
		}
	}
	if !found {
		t.Fatalf("simulate trace %s not in recent list", tid)
	}

	otlp := do(t, s.Handler(), "GET", "/debug/tracez?trace="+tid.String(), nil)
	if otlp.Code != 200 {
		t.Fatalf("OTLP export status %d: %s", otlp.Code, otlp.Body.String())
	}
	if ct := otlp.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("OTLP content type %q", ct)
	}
	body := otlp.Body.String()
	for _, want := range []string{`"resourceSpans"`, `"scopeSpans"`, tid.String(), "HTTP POST /v1/simulate"} {
		if !strings.Contains(body, want) {
			t.Fatalf("OTLP export missing %q:\n%s", want, body)
		}
	}

	if rec := do(t, s.Handler(), "GET", "/debug/tracez?trace=zz", nil); rec.Code != 400 {
		t.Fatalf("bad id status %d", rec.Code)
	}
	unknown := "0123456789abcdef0123456789abcdef"
	if rec := do(t, s.Handler(), "GET", "/debug/tracez?trace="+unknown, nil); rec.Code != 404 {
		t.Fatalf("unknown id status %d", rec.Code)
	}
	if rec := do(t, s.Handler(), "GET", "/debug/tracez?n=bogus", nil); rec.Code != 400 {
		t.Fatalf("bad n status %d", rec.Code)
	}
}

// TestJobsEvictedMetric: retiring finished jobs past RetainJobs ticks
// jobs_evicted_total.
func TestJobsEvictedMetric(t *testing.T) {
	s := New(Config{RetainJobs: 1})
	for i := 0; i < 3; i++ {
		rec := do(t, s.Handler(), "POST", "/v1/jobs", quickJob())
		if rec.Code != 202 {
			t.Fatalf("submit %d status %d", i, rec.Code)
		}
		pollJob(t, s.Handler(), decode[JobStatus](t, rec).ID)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Registry().Snapshot()["jobs_evicted_total"] >= 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs_evicted_total = %g, want >= 2",
				s.Registry().Snapshot()["jobs_evicted_total"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
