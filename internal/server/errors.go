package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/sim"
)

// Error codes returned in the structured error body. They are part of the
// API: clients branch on Code, the Message is for humans.
const (
	CodeInvalidRequest = "invalid_request" // malformed JSON, bad fields, bad CRN text
	CodeTooLarge       = "too_large"       // request body over Limits.MaxBodyBytes
	CodeLimitExceeded  = "limit_exceeded"  // network or sweep over the configured limits
	CodeNotFound       = "not_found"       // unknown job id / experiment / route
	CodeUnavailable    = "unavailable"     // server draining or over capacity
	CodeCanceled       = "canceled"        // request context ended before the simulation
	CodeSimFailed      = "sim_failed"      // the simulation itself reported an error
	CodeStiffness      = "stiffness"       // ODE step-size collapse; retry with the stiff solver
	CodeInternal       = "internal"
)

// apiError is an error with an HTTP status and a machine-readable code; every
// handler failure is funneled through it so clients always see the same
// envelope:
//
//	{"error":{"code":"invalid_request","message":"...","fields":[...]}}
//
// Fields is present only for configuration errors, carrying one entry per
// invalid field so clients can attach messages to the offending inputs.
type apiError struct {
	Status  int          `json:"-"`
	Code    string       `json:"code"`
	Message string       `json:"message"`
	Fields  []errorField `json:"fields,omitempty"`
}

// errorField is one field-level diagnostic inside the error envelope.
type errorField struct {
	Field   string `json:"field"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// errf builds an apiError with a formatted message.
func errf(status int, code, format string, args ...any) *apiError {
	return &apiError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// configError maps a *sim.ConfigError to a 400 envelope with per-field
// diagnostics; any other error falls back to a plain message. It is the
// bridge between sim.Config.Validate's structured report and the API error
// shape, shared by /v1/simulate and /v1/jobs.
func configError(err error) *apiError {
	ae := errf(http.StatusBadRequest, CodeInvalidRequest, "%v", err)
	var ce *sim.ConfigError
	if errors.As(err, &ce) {
		for _, f := range ce.Fields {
			ae.Fields = append(ae.Fields, errorField{Field: f.Field, Message: f.Msg})
		}
	}
	return ae
}

// writeError renders err as the structured JSON envelope. Non-apiError values
// become 500 internal errors; the raw error text is passed through because
// this service's clients are the people debugging their own CRNs.
func writeError(w http.ResponseWriter, err error) {
	var ae *apiError
	if !errors.As(err, &ae) {
		ae = errf(http.StatusInternalServerError, CodeInternal, "%v", err)
	}
	writeJSON(w, ae.Status, map[string]*apiError{"error": ae})
}

// writeJSON renders v with the given status. Encoding failures at this point
// can only be programming errors; they surface as a plain 500.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encoding failure", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(b)
}
