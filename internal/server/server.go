// Package server is the HTTP face of the repository: a JSON-over-HTTP
// service that parses, compiles and simulates chemical reaction networks on
// request, on top of the layers the previous PRs built — sim.Run for
// context-aware single simulations, internal/batch for fanned parameter
// sweeps, and internal/obs for metrics and access logs.
//
// Endpoints:
//
//	POST   /v1/simulate    synchronous run of a submitted CRN (or a named
//	                       experiment from exper.Registry()), with a
//	                       per-request deadline and a response cache
//	POST   /v1/jobs        submit an asynchronous parameter-sweep job
//	GET    /v1/jobs        list jobs
//	GET    /v1/jobs/{id}   job status, progress and (when done) results
//	GET    /v1/jobs/{id}/events  live SSE stream of one job's progress and
//	                       clock telemetry (edges, phases, health alerts)
//	DELETE /v1/jobs/{id}   cancel a job
//	GET    /v1/stream      live SSE stream of every job's events
//	GET    /v1/experiments list the registered reproduction experiments
//	GET    /metrics        Prometheus text exposition of the server registry
//	GET    /debug/tracez   recent and slowest request traces; ?trace=<hex id>
//	                       exports one trace as OTLP/JSON
//	GET    /healthz        liveness (always 200 while the process serves)
//	GET    /readyz         readiness (503 once draining begins)
//
// DebugHandler serves the operator-only introspection surface — continuous
// profiling via /debug/pprof/*, the human-readable /debug/statusz
// dashboard, /debug/tracez and a /metrics mirror — meant for a separate
// loopback listener (crnserved -debug-addr), never the public one.
//
// Every request runs under a span: the W3C traceparent header is honoured on
// the way in and set on the way out, job submissions parent one span per
// sweep point (IDs derived deterministically from the job index, like the
// seeds), and the simulators hang their own spans underneath — so one trace
// in /debug/tracez shows HTTP handling, queue wait and per-point sim time.
//
// Robustness is part of the design: request bodies are size-capped, parsed
// networks are rejected over the species/reaction limits, simulation work is
// bounded by a semaphore independent of accepted connections, deterministic
// responses are served from a canonical-request-hash LRU cache, and Drain
// lets in-flight jobs finish before shutdown.
package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/flight"
	"repro/internal/obs/proc"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
)

// Limits bounds what a single request may ask of the server. Zero values
// select the documented defaults.
type Limits struct {
	// MaxBodyBytes caps the request body; 0 -> 1 MiB.
	MaxBodyBytes int64
	// MaxSpecies and MaxReactions cap the parsed network; 0 -> 4096 / 16384.
	MaxSpecies   int
	MaxReactions int
	// MaxSweepPoints caps the per-job sweep size; 0 -> 4096.
	MaxSweepPoints int
	// MaxActiveJobs caps concurrently live (not yet drained) jobs; 0 -> 64.
	MaxActiveJobs int
}

func (l Limits) normalize() Limits {
	if l.MaxBodyBytes == 0 {
		l.MaxBodyBytes = 1 << 20
	}
	if l.MaxSpecies == 0 {
		l.MaxSpecies = 4096
	}
	if l.MaxReactions == 0 {
		l.MaxReactions = 16384
	}
	if l.MaxSweepPoints == 0 {
		l.MaxSweepPoints = 4096
	}
	if l.MaxActiveJobs == 0 {
		l.MaxActiveJobs = 64
	}
	return l
}

// Config assembles a Server. The zero value serves with all defaults.
type Config struct {
	Limits Limits
	// CacheSize bounds both LRU caches (compiled networks and finished
	// deterministic responses) in entries; 0 -> 128, negative disables
	// caching entirely (every request recomputes).
	CacheSize int
	// MaxConcurrentSims bounds simultaneously executing simulation work —
	// synchronous requests and sweep points together — independent of how
	// many connections the HTTP listener accepts; 0 -> runtime.NumCPU().
	MaxConcurrentSims int
	// SimTimeout is the server-side ceiling on one simulation (the
	// per-request deadline); a request's timeout_seconds may shorten but
	// never extend it. 0 -> 60s.
	SimTimeout time.Duration
	// Workers bounds the batch pool each sweep job fans across; 0 -> NumCPU.
	Workers int
	// RetainJobs caps how many finished jobs stay queryable; 0 -> 256.
	RetainJobs int
	// Registry receives every server metric; one is created when nil.
	// Expose it through GET /metrics by serving Handler.
	Registry *obs.Registry
	// AccessLog, when non-nil, receives one structured JSON line per served
	// request (and per server lifecycle event) through a span-correlating
	// slog logger built with obs.NewLogger. Ignored when Logger is set.
	AccessLog io.Writer
	// Logger, when non-nil, receives the server's structured access and
	// lifecycle records directly, overriding AccessLog. Wrap custom
	// handlers with obs.WithSpanContext to keep trace/span correlation.
	Logger *slog.Logger
	// ProcSampleEvery is the runtime self-sampling cadence of the proc
	// collector feeding proc_* metrics and the /debug/statusz sparklines;
	// 0 -> proc.DefaultInterval, negative disables collection.
	ProcSampleEvery time.Duration
	// Tracer records request/job/sim spans (served at /debug/tracez); one
	// with TraceCapacity retained spans is created when nil.
	Tracer *span.Tracer
	// TraceCapacity bounds the created tracer's in-memory span ring;
	// 0 -> 2048. Ignored when Tracer is set.
	TraceCapacity int
	// EventBuffer is the per-SSE-subscriber event buffer; a subscriber whose
	// buffer is full loses events (counted, never blocking the publisher).
	// 0 -> 256.
	EventBuffer int
	// Cluster, when non-nil, makes this server a cluster coordinator: workers
	// register through /cluster/v1/join, and unwatched sweep jobs shard
	// across them (see internal/cluster). The partition executor endpoint is
	// mounted on every server regardless — any node can do sweep work.
	Cluster *cluster.Options
	// TSDBStep is the sampling cadence of the embedded time-series store
	// that snapshots the registry for statusz sparklines, /debug/query and
	// the alert rules; 0 -> 5s, negative disables the store (and with it
	// the alert engine and flight recorder).
	TSDBStep time.Duration
	// TSDBRetention bounds how much history each series keeps; 0 -> 1h.
	TSDBRetention time.Duration
	// Rules is the alert rule set evaluated against the store;
	// nil -> alert.DefaultRules(). An explicitly empty non-nil slice
	// disables alerting while keeping the store.
	Rules []alert.Rule
	// AlertEvery is the rule evaluation cadence; 0 -> TSDBStep.
	AlertEvery time.Duration
	// FlightDir, when non-empty, persists flight-recorder capsules as JSON
	// files there in addition to the in-memory ring.
	FlightDir string
	// FlightCapsules bounds the in-memory capsule ring; 0 -> 16.
	FlightCapsules int
	// PartitionDelay injects an artificial pause before every partition this
	// node executes for a coordinator. It exists for scale-model
	// benchmarking: on a single machine it stands in for the network and
	// queueing latency a real multi-host deployment has, so the scaling
	// harness can measure the coordinator's dispatch pipelining honestly.
	// Leave 0 in production.
	PartitionDelay time.Duration
}

// Server is the HTTP simulation service. Create with New, serve Handler().
type Server struct {
	cfg      Config
	reg      *obs.Registry
	log      *slog.Logger
	proc     *proc.Collector
	start    time.Time
	netCache *lruCache // crn text hash -> *crn.Network
	resCache *lruCache // canonical request hash -> cachedResponse
	sem      chan struct{}
	jobs     *jobStore
	mux      *http.ServeMux
	draining atomic.Bool
	coord    *cluster.Coordinator // nil unless Config.Cluster set

	tracer    *span.Tracer
	broker    *obs.Broker
	drainCh   chan struct{} // closed when draining starts; ends SSE streams
	drainOnce sync.Once

	db       *tsdb.DB         // nil when Config.TSDBStep < 0
	engine   *alert.Engine    // nil when the store or rule set is disabled
	recorder *flight.Recorder // nil when the store is disabled

	simInflight *obs.Gauge
	simWait     *obs.Histogram
	simCanceled *obs.Counter
	jobsEvicted *obs.Counter

	// Per-request resource attribution counters (kind="simulate"); the
	// batch engine merges the matching kind="batch" series per sweep.
	attrCPU        *obs.Counter
	attrAllocs     *obs.Counter
	attrAllocBytes *obs.Counter
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg.Limits = cfg.Limits.normalize()
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 128
	}
	if cfg.MaxConcurrentSims <= 0 {
		cfg.MaxConcurrentSims = runtime.NumCPU()
	}
	if cfg.SimTimeout <= 0 {
		cfg.SimTimeout = 60 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 256
	}
	if cfg.TraceCapacity == 0 {
		cfg.TraceCapacity = 2048
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 256
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = span.NewTracer(cfg.TraceCapacity)
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		start:    time.Now(),
		netCache: newLRU(cfg.CacheSize, "network", reg),
		resCache: newLRU(cfg.CacheSize, "response", reg),
		sem:      make(chan struct{}, cfg.MaxConcurrentSims),
		tracer:   tracer,
		broker:   obs.NewBroker(),
		drainCh:  make(chan struct{}),

		simInflight: reg.Gauge("server_sims_inflight"),
		simWait:     reg.Histogram("server_sim_wait_seconds", obs.HTTPTimeBuckets()),
		simCanceled: reg.Counter("server_sims_canceled_total"),
		jobsEvicted: reg.Counter("jobs_evicted_total"),

		attrCPU:        reg.Counter(obs.Label("job_cpu_seconds", "kind", "simulate")),
		attrAllocs:     reg.Counter(obs.Label("job_allocs_total", "kind", "simulate")),
		attrAllocBytes: reg.Counter(obs.Label("job_alloc_bytes_total", "kind", "simulate")),
	}
	s.broker.Metrics(reg)
	switch {
	case cfg.Logger != nil:
		s.log = cfg.Logger
	case cfg.AccessLog != nil:
		s.log = obs.NewLogger(cfg.AccessLog, nil)
	}
	if cfg.ProcSampleEvery >= 0 {
		s.proc = proc.New(reg, cfg.ProcSampleEvery)
		s.proc.Start()
	}
	s.jobs = newJobStore(s)
	if cfg.Cluster != nil {
		s.coord = cluster.New(*cfg.Cluster, cluster.Deps{
			Local:    s.localPartition,
			Registry: reg,
			Spans:    tracer.Store(),
			Logger:   s.log,
		})
	}
	if cfg.TSDBStep >= 0 {
		s.db = tsdb.New(reg, tsdb.Options{Step: cfg.TSDBStep, Retention: cfg.TSDBRetention})
		if s.coord != nil {
			s.db.AddSource(s.coord.TSDBSource())
		}
		s.recorder = flight.New(flight.Options{
			Broker: s.broker, Spans: tracer.Store(), DB: s.db,
			Dir: cfg.FlightDir, MaxCapsules: cfg.FlightCapsules,
			Extra: []string{"proc_*", "cluster_worker_*"},
		})
		rules := cfg.Rules
		if rules == nil {
			rules = alert.DefaultRules()
		}
		if len(rules) > 0 {
			s.engine = alert.New(alert.Options{
				DB: s.db, Rules: rules, Every: cfg.AlertEvery,
				Registry: reg, Broker: s.broker, Logger: s.log, Tracer: tracer,
				OnTransition: s.onAlertTransition,
			})
		}
		s.db.Start()
		s.recorder.Start()
		s.engine.Start()
	}
	s.mux = http.NewServeMux()
	s.route("POST /v1/simulate", s.handleSimulate)
	s.route("POST /v1/jobs", s.handleJobSubmit)
	s.route("GET /v1/jobs", s.handleJobList)
	s.route("GET /v1/jobs/{id}", s.handleJobStatus)
	s.route("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.route("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.route("GET /v1/stream", s.handleStream)
	s.route("GET /v1/experiments", s.handleExperiments)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /debug/tracez", s.handleTracez)
	s.route("GET /debug/query", s.handleTSDBQuery)
	s.route("GET /debug/tsdb", s.handleTSDBPage)
	s.route("GET /debug/flightz", s.handleFlightList)
	s.route("GET /debug/flightz/{id}", s.handleFlightGet)
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /readyz", s.handleReadyz)
	s.route("POST /cluster/v1/partition", s.handlePartition)
	if s.coord != nil {
		s.route("POST /cluster/v1/join", s.handleClusterJoin)
		s.route("POST /cluster/v1/heartbeat", s.handleClusterHeartbeat)
		s.route("POST /cluster/v1/leave", s.handleClusterLeave)
		s.route("GET /cluster/v1/workers", s.handleClusterWorkers)
	}
	return s
}

// route registers pattern with the standard instrumentation stack. The mux
// pattern doubles as the metric route label, which keeps label cardinality
// equal to the route count no matter what paths clients probe.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.Handle(pattern, obs.InstrumentHTTP(s.reg, s.log, s.tracer, pattern, h))
}

// Registry returns the server's metrics registry (the one /metrics serves).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer returns the server's span tracer (the one /debug/tracez serves).
func (s *Server) Tracer() *span.Tracer { return s.tracer }

// Broker returns the server's SSE event broker.
func (s *Server) Broker() *obs.Broker { return s.broker }

// Coordinator returns the cluster coordinator, or nil when this server was
// not built with Config.Cluster.
func (s *Server) Coordinator() *cluster.Coordinator { return s.coord }

// TSDB returns the embedded time-series store, or nil when disabled.
func (s *Server) TSDB() *tsdb.DB { return s.db }

// Alerts returns the alert engine, or nil when disabled.
func (s *Server) Alerts() *alert.Engine { return s.engine }

// Flight returns the flight recorder, or nil when the store is disabled.
func (s *Server) Flight() *flight.Recorder { return s.recorder }

// onAlertTransition is the alert engine's hook: entering firing captures a
// flight capsule so the recent past survives the incident.
func (s *Server) onAlertTransition(tr alert.Transition) {
	if tr.To != alert.StateFiring {
		return
	}
	s.recorder.Capture(flight.Trigger{
		Rule: tr.Rule.Name, Severity: tr.Rule.Severity, State: tr.To,
		Value: tr.Value, Threshold: tr.Rule.Value, Detail: tr.Rule.Detail,
		Inputs: tr.Rule.Inputs(),
	})
}

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// StartDrain flips the server into draining mode: /readyz starts failing and
// new simulations and jobs are rejected with 503, while status polls, metrics
// and health stay served; open SSE streams are told to finish and closed. It
// is idempotent.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	s.drainOnce.Do(func() {
		close(s.drainCh)
		s.proc.Stop()
		s.engine.Stop()
		s.recorder.Stop()
		s.db.Stop()
	})
}

// Drain performs graceful shutdown of the simulation side: it stops
// admitting work (StartDrain) and blocks until every in-flight job has
// finished — or until ctx expires, at which point the stragglers are
// canceled and awaited (cancellation is prompt: the simulators poll their
// context inside the step loops). It returns the number of jobs that were
// force-canceled.
func (s *Server) Drain(ctx context.Context) int {
	s.StartDrain()
	return s.jobs.drain(ctx)
}

// acquireSim takes one slot of the simulation semaphore, honouring ctx while
// waiting, and records (and returns) the queue wait. Callers must releaseSim
// exactly once after a nil error.
func (s *Server) acquireSim(ctx context.Context) (time.Duration, error) {
	start := time.Now()
	select {
	case s.sem <- struct{}{}:
		wait := time.Since(start)
		s.simWait.Observe(wait.Seconds())
		s.simInflight.Add(1)
		return wait, nil
	case <-ctx.Done():
		return time.Since(start), ctx.Err()
	}
}

func (s *Server) releaseSim() {
	s.simInflight.Add(-1)
	<-s.sem
}

// handleMetrics serves the registry in the Prometheus text exposition
// format, refreshing the point-in-time gauges first.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Membership expiry is lazy (re-evaluated on access), so force a pass
	// before exposing cluster_workers{state=}: without it a scrape of an
	// otherwise idle coordinator reports the gauges as of the last
	// membership access, hiding an already-expired worker.
	s.coord.RefreshMembership()
	s.reg.Gauge(obs.Label("cache_entries", "cache", "network")).Set(float64(s.netCache.len()))
	s.reg.Gauge(obs.Label("cache_entries", "cache", "response")).Set(float64(s.resCache.len()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := s.reg.WriteTo(w); err != nil {
		// The response is already partially written; nothing to repair.
		return
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}
