package server

import (
	"fmt"
	"html/template"
	"net/http"
	"time"

	"repro/internal/obs/alert"
	"repro/internal/obs/flight"
	"repro/internal/obs/tsdb"
)

// handleTSDBQuery serves GET /debug/query: one evaluation against the
// embedded time-series store.
//
//	?metric=  series name or glob (required)
//	?func=    last|rate|delta|avg|min|max (default last)
//	?window=  Go duration, e.g. 5m (default: whole retention / staleness)
//	?agg=     max|min|sum|avg fold across glob matches (default max)
//	?range=1  also return the raw points of every matching series
func (s *Server) handleTSDBQuery(w http.ResponseWriter, r *http.Request) {
	if s.db == nil {
		http.Error(w, "tsdb disabled", http.StatusNotFound)
		return
	}
	q := tsdb.Query{
		Metric: r.URL.Query().Get("metric"),
		Func:   r.URL.Query().Get("func"),
		Agg:    r.URL.Query().Get("agg"),
	}
	if q.Metric == "" {
		http.Error(w, "missing ?metric=", http.StatusBadRequest)
		return
	}
	if !tsdb.ValidFunc(q.Func) {
		http.Error(w, fmt.Sprintf("unknown func %q", q.Func), http.StatusBadRequest)
		return
	}
	if ws := r.URL.Query().Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil {
			http.Error(w, "bad ?window=: "+err.Error(), http.StatusBadRequest)
			return
		}
		q.Window = d
	}
	type resp struct {
		Query  tsdb.Query              `json:"query"`
		Value  float64                 `json:"value"`
		OK     bool                    `json:"ok"`
		Series map[string][]tsdb.Point `json:"series,omitempty"`
	}
	out := resp{Query: q}
	out.Value, out.OK = s.db.Eval(q)
	if r.URL.Query().Get("range") != "" {
		out.Series = make(map[string][]tsdb.Point)
		window := q.Window
		if window <= 0 {
			window = s.db.Retention()
		}
		for _, name := range s.db.Match(q.Metric) {
			if pts := s.db.Range(name, window); len(pts) > 0 {
				out.Series[name] = pts
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// tsdbPageData is the view model of the /debug/tsdb HTML page.
type tsdbPageData struct {
	Stats  tsdb.Stats
	Step   time.Duration
	Ret    time.Duration
	Series []tsdbPageSeries
	Alerts []alert.RuleStatus
}

type tsdbPageSeries struct {
	Info  tsdb.SeriesInfo
	Spark string
}

// handleTSDBPage serves GET /debug/tsdb: the store's series directory as
// HTML (default) or JSON (?format=json), each series with a sparkline of
// its retained history.
func (s *Server) handleTSDBPage(w http.ResponseWriter, r *http.Request) {
	if s.db == nil {
		http.Error(w, "tsdb disabled", http.StatusNotFound)
		return
	}
	infos := s.db.List()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, map[string]any{
			"stats": s.db.DBStats(), "series": infos,
		})
		return
	}
	d := tsdbPageData{
		Stats: s.db.DBStats(), Step: s.db.Step(), Ret: s.db.Retention(),
		Alerts: s.engine.Status(),
	}
	for _, info := range infos {
		pts := s.db.Range(info.Name, 0)
		vals := make([]float64, len(pts))
		for i, p := range pts {
			vals[i] = p.Value
		}
		if len(vals) > sparkWidth {
			vals = vals[len(vals)-sparkWidth:]
		}
		d.Series = append(d.Series, tsdbPageSeries{Info: info, Spark: sparkline(vals)})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := tsdbTmpl.Execute(w, d); err != nil {
		return
	}
}

// handleFlightList serves GET /debug/flightz: the retained capsule
// directory, newest first.
func (s *Server) handleFlightList(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	lst := s.recorder.List()
	if lst == nil {
		lst = []flight.Info{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"capsules": lst})
}

// handleFlightGet serves GET /debug/flightz/{id}: one full capsule.
func (s *Server) handleFlightGet(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	c, ok := s.recorder.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such capsule", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, c)
}

var tsdbTmpl = template.Must(template.New("tsdb").Parse(`<!DOCTYPE html>
<html><head><title>crnserved tsdb</title>
<style>
body { font-family: monospace; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.4em; border-bottom: 1px solid #ccc; }
table { border-collapse: collapse; margin: .4em 0; }
td, th { padding: .15em .7em; text-align: left; border-bottom: 1px solid #eee; }
th { color: #555; font-weight: normal; }
.spark { font-size: 1.1em; letter-spacing: -1px; color: #2a6; }
.bad { color: #b00; } .ok { color: #2a6; } .muted { color: #888; }
</style></head><body>
<h1>crnserved /debug/tsdb</h1>
<p class="muted">{{.Stats.Series}} series · {{.Stats.Ticks}} polls taken · step {{.Step}} · retention {{.Ret}}{{if .Stats.Dropped}} · <span class="bad">{{.Stats.Dropped}} series dropped at the cap</span>{{end}}</p>

{{if .Alerts}}<h2>Alert rules</h2>
<table>
<tr><th>rule</th><th>severity</th><th>state</th><th>value</th><th>fires</th></tr>
{{range .Alerts}}<tr><td>{{.Rule.Name}}</td><td>{{.Rule.Severity}}</td><td>{{if eq .State "firing"}}<span class="bad">{{.State}}</span>{{else if eq .State "pending"}}{{.State}}{{else}}<span class="ok">{{.State}}</span>{{end}}</td><td>{{if .HasValue}}{{printf "%.4g" .Value}}{{else}}<span class="muted">no data</span>{{end}}</td><td>{{.Fires}}</td></tr>
{{end}}</table>{{end}}

<h2>Series</h2>
<table>
<tr><th>name</th><th>kind</th><th>points</th><th>last</th><th>history</th></tr>
{{range .Series}}<tr><td>{{.Info.Name}}</td><td>{{.Info.KindS}}</td><td>{{.Info.Points}}</td><td>{{printf "%.4g" .Info.Last}}</td><td class="spark">{{.Spark}}</td></tr>
{{end}}</table>

<p class="muted">query: <a href="/debug/query?metric=proc_heap_bytes">/debug/query?metric=…&amp;func=…&amp;window=…</a> · capsules: <a href="/debug/flightz">/debug/flightz</a> · dashboard: <a href="/debug/statusz">/debug/statusz</a></p>
</body></html>
`))
