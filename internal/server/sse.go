package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
)

// sseRetryMillis is the reconnect delay hint sent to every SSE client.
const sseRetryMillis = 2000

// startSSE negotiates the SSE response: it fails with 500 if the writer
// cannot stream, otherwise sets the stream headers and returns the flusher.
func startSSE(w http.ResponseWriter) (http.Flusher, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errf(http.StatusInternalServerError, CodeInternal,
			"response writer does not support streaming"))
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	fmt.Fprintf(w, "retry: %d\n\n", sseRetryMillis)
	fl.Flush()
	return fl, true
}

// writeSSE frames one StreamEvent: the broker sequence number becomes the SSE
// id (clients spot drop-policy gaps by jumps), the kind the event name.
func writeSSE(w http.ResponseWriter, fl http.Flusher, ev obs.StreamEvent) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Kind, ev.Seq, b); err != nil {
		return err
	}
	fl.Flush()
	return nil
}

// handleJobEvents is GET /v1/jobs/{id}/events: a live SSE stream of one job's
// progress and clock telemetry. The stream opens with a job_status snapshot
// (so a client connecting late still learns the current counts), then pushes
// job_progress / clock_edge / phase_change / alert events as they happen, and
// ends with job_done. Slow consumers lose events rather than stalling the
// simulation; the subscriber's drop count rides along on job_done.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, errf(http.StatusNotFound, CodeNotFound, "unknown job %q", id))
		return
	}
	fl, ok := startSSE(w)
	if !ok {
		return
	}
	sub := s.broker.Subscribe(s.cfg.EventBuffer, func(ev obs.StreamEvent) bool {
		return ev.Job == id
	})
	defer sub.Close()

	// Snapshot first: everything the client missed before subscribing.
	st := j.status(false)
	snap := obs.StreamEvent{Kind: "job_status", Job: id, Time: time.Now(), Data: map[string]any{
		"state": st.State, "completed": st.Completed, "failed": st.Failed, "total": st.Total,
	}}
	if err := writeSSE(w, fl, snap); err != nil {
		return
	}
	if st.terminal() {
		// Already finished: the snapshot is the whole story. Queued jobs are
		// live — their stream stays open for the progress to come.
		s.endSSE(w, fl, id, sub)
		return
	}

	for {
		select {
		case ev := <-sub.C:
			if err := writeSSE(w, fl, ev); err != nil {
				return
			}
			if ev.Kind == "job_done" {
				return
			}
		case <-j.run.Done():
			// Drain anything already buffered, then close out. The job_done
			// event may race the Done channel; both exits are clean.
			for {
				select {
				case ev := <-sub.C:
					if err := writeSSE(w, fl, ev); err != nil {
						return
					}
					if ev.Kind == "job_done" {
						return
					}
				default:
					s.endSSE(w, fl, id, sub)
					return
				}
			}
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		}
	}
}

// endSSE emits a terminal job_done frame carrying the job's final counters
// and this subscriber's drop count.
func (s *Server) endSSE(w http.ResponseWriter, fl http.Flusher, id string, sub *obs.Sub) {
	j, ok := s.jobs.get(id)
	if !ok {
		return
	}
	st := j.status(false)
	writeSSE(w, fl, obs.StreamEvent{Kind: "job_done", Job: id, Time: time.Now(), Data: map[string]any{
		"state": st.State, "completed": st.Completed, "failed": st.Failed,
		"total": st.Total, "dropped": sub.Dropped(),
	}})
}

// handleStream is GET /v1/stream: a live SSE firehose of every job's events.
// ?kind=a,b filters to the named event kinds and ?job=<id> to one job. The
// stream stays open until the client disconnects or the server drains;
// heartbeat comments every 15s keep idle connections from timing out.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	kinds := map[string]bool{}
	if q := r.URL.Query().Get("kind"); q != "" {
		for _, k := range splitCSV(q) {
			kinds[k] = true
		}
	}
	jobFilter := r.URL.Query().Get("job")
	fl, ok := startSSE(w)
	if !ok {
		return
	}
	sub := s.broker.Subscribe(s.cfg.EventBuffer, func(ev obs.StreamEvent) bool {
		if len(kinds) > 0 && !kinds[ev.Kind] {
			return false
		}
		return jobFilter == "" || ev.Job == jobFilter
	})
	defer sub.Close()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev := <-sub.C:
			if err := writeSSE(w, fl, ev); err != nil {
				return
			}
		case <-heartbeat.C:
			if _, err := fmt.Fprintf(w, ": heartbeat dropped=%d\n\n", sub.Dropped()); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		}
	}
}

// splitCSV splits a comma-separated query value, dropping empty elements.
func splitCSV(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// handleTracez is GET /debug/tracez: without parameters, a JSON summary of
// the most recent and the slowest retained traces; with ?trace=<32-hex id>,
// that trace's full span tree as OTLP/JSON (importable by any OpenTelemetry
// viewer). ?n=<k> bounds the summary lists (default 20).
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	store := s.tracer.Store()
	if hexID := r.URL.Query().Get("trace"); hexID != "" {
		tid, err := span.ParseTraceID(hexID)
		if err != nil {
			writeError(w, errf(http.StatusBadRequest, CodeInvalidRequest,
				"bad trace id %q: %v", hexID, err))
			return
		}
		spans := store.Trace(tid)
		if len(spans) == 0 {
			writeError(w, errf(http.StatusNotFound, CodeNotFound,
				"trace %s not retained (store holds the most recent %d spans)", hexID, store.Len()))
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		span.WriteOTLP(w, "crnserved", spans)
		return
	}
	n := 20
	if q := r.URL.Query().Get("n"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &n); err != nil || n <= 0 {
			writeError(w, errf(http.StatusBadRequest, CodeInvalidRequest, "bad n %q", q))
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"spans_retained": store.Len(),
		"spans_total":    store.Total(),
		"recent":         store.Summaries(n, false),
		"slowest":        store.Summaries(n, true),
	})
}
