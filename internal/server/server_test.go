package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/clock"
	"repro/internal/crn"
	"repro/internal/phases"
	"repro/internal/sim"
)

// clockText renders the paper's tri-phase molecular clock in the .crn text
// format — the canonical request payload of the end-to-end tests.
func clockText(t testing.TB) string {
	t.Helper()
	n := crn.NewNetwork()
	s := phases.NewScheme(n, "ph")
	if _, err := clock.Add(s, "clk", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	return n.String()
}

// do drives the in-process handler with a JSON body and returns the recorder.
func do(t testing.TB, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		enc, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(enc)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, rd))
	return rec
}

// decode unmarshals a recorder body, failing the test on malformed JSON.
func decode[T any](t testing.TB, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad JSON response %q: %v", rec.Body.String(), err)
	}
	return v
}

// TestSimulateGoldenClock is the acceptance proof: POST /v1/simulate of the
// tri-phase clock returns exactly the trajectory sim.Run produces when called
// directly on the same parsed network — same species, same sample times, same
// values bit for bit.
func TestSimulateGoldenClock(t *testing.T) {
	s := New(Config{})
	text := clockText(t)

	rec := do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
		CRN: text, TEnd: 20, Fast: 300, Slow: 1,
	})
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	got := decode[SimulateResponse](t, rec)

	net, err := crn.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(context.Background(), net, sim.Config{
		Rates: sim.Rates{Fast: 300, Slow: 1}, TEnd: 20,
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Species) != len(want.Names) {
		t.Fatalf("species count %d != %d", len(got.Species), len(want.Names))
	}
	for i, n := range want.Names {
		if got.Species[i] != n {
			t.Fatalf("species[%d] = %q, want %q", i, got.Species[i], n)
		}
	}
	if len(got.T) != len(want.T) {
		t.Fatalf("sample count %d != %d", len(got.T), len(want.T))
	}
	for k := range want.T {
		if got.T[k] != want.T[k] {
			t.Fatalf("t[%d] = %v, want %v", k, got.T[k], want.T[k])
		}
		for j := range want.Names {
			if got.Rows[k][j] != want.Rows[k][j] {
				t.Fatalf("rows[%d][%d] (%s) = %v, want %v",
					k, j, want.Names[j], got.Rows[k][j], want.Rows[k][j])
			}
		}
	}
	for _, n := range want.Names {
		if got.Final[n] != want.Final(n) {
			t.Fatalf("final[%s] = %v, want %v", n, got.Final[n], want.Final(n))
		}
	}
}

// TestSimulateCacheDeterminism: repeated identical requests must be served
// from the response cache with byte-identical bodies, and the hit must be
// visible both in the X-Cache header and in the /metrics exposition.
func TestSimulateCacheDeterminism(t *testing.T) {
	s := New(Config{})
	req := SimulateRequest{CRN: clockText(t), TEnd: 10, Fast: 300, Slow: 1}

	first := do(t, s.Handler(), "POST", "/v1/simulate", req)
	if first.Code != 200 || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first request: status %d, X-Cache %q", first.Code, first.Header().Get("X-Cache"))
	}
	second := do(t, s.Handler(), "POST", "/v1/simulate", req)
	if second.Code != 200 || second.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second request: status %d, X-Cache %q", second.Code, second.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cached response body differs from the original")
	}

	// Textually different but semantically identical requests (a comment and
	// an explicit default) canonicalize onto the same cache entry.
	equiv := do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
		CRN:  "# the same clock, reformatted\n" + clockText(t),
		TEnd: 10, Fast: 300, Slow: 1, Method: "ode",
	})
	if equiv.Header().Get("X-Cache") != "hit" {
		t.Errorf("equivalent request missed the cache")
	}
	if !bytes.Equal(first.Body.Bytes(), equiv.Body.Bytes()) {
		t.Error("equivalent request body differs")
	}

	metrics := do(t, s.Handler(), "GET", "/metrics", nil).Body.String()
	if !strings.Contains(metrics, `cache_hits_total{cache="response"} 2`) {
		t.Errorf("metrics missing response-cache hits:\n%s", metrics)
	}
	if !strings.Contains(metrics, `cache_hits_total{cache="network"}`) {
		t.Errorf("metrics missing network-cache family")
	}
}

// TestSimulateStochasticCaching: stochastic runs are cacheable only under an
// explicit seed — an unseeded SSA request must never be served from cache.
func TestSimulateStochasticCaching(t *testing.T) {
	s := New(Config{})
	text := "init X = 1\nX -> Y : slow"

	seeded := SimulateRequest{CRN: text, TEnd: 2, Method: "ssa", Unit: 50, Seed: 7}
	do(t, s.Handler(), "POST", "/v1/simulate", seeded)
	if rec := do(t, s.Handler(), "POST", "/v1/simulate", seeded); rec.Header().Get("X-Cache") != "hit" {
		t.Errorf("seeded SSA request not cached")
	}

	unseeded := SimulateRequest{CRN: text, TEnd: 2, Method: "ssa", Unit: 50}
	do(t, s.Handler(), "POST", "/v1/simulate", unseeded)
	if rec := do(t, s.Handler(), "POST", "/v1/simulate", unseeded); rec.Header().Get("X-Cache") != "miss" {
		t.Errorf("unseeded SSA request served from cache")
	}
}

// TestSimulateEnsemble: runs > 1 switches the endpoint to the multi-run
// path — per-run final states plus across-run statistics, bit-identical to
// a direct sim.RunMany of the same spec, with per-run seeds derived exactly
// like sweep-job points.
func TestSimulateEnsemble(t *testing.T) {
	s := New(Config{})
	text := "init X = 30\nX -> Y : slow"
	rec := do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
		CRN: text, TEnd: 2, Method: "ssa", Unit: 50, Seed: 11, Runs: 5,
		Record: []string{"Y"},
	})
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	got := decode[SimulateResponse](t, rec)
	if got.Ensemble == nil {
		t.Fatalf("no ensemble in response: %s", rec.Body.String())
	}
	if len(got.T) != 0 || len(got.Rows) != 0 {
		t.Fatal("ensemble response carries a trajectory")
	}
	if len(got.Species) != 1 || got.Species[0] != "Y" {
		t.Fatalf("species = %v, want [Y]", got.Species)
	}
	e := got.Ensemble
	if e.Runs != 5 || e.OK != 5 || len(e.PerRun) != 5 {
		t.Fatalf("ensemble shape: runs %d ok %d per_run %d", e.Runs, e.OK, len(e.PerRun))
	}

	net, err := crn.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunMany(context.Background(), net, sim.BatchConfig{
		Base: sim.Config{Method: sim.SSA, Rates: sim.DefaultRates(),
			TEnd: 2, Unit: 50, Seed: 11},
		Runs: 5, FinalsOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	yi, ok := want.Index("Y")
	if !ok {
		t.Fatal("no Y column")
	}
	for i, r := range e.PerRun {
		if wantSeed := batch.DeriveSeed(11, i); r.Seed != wantSeed {
			t.Errorf("run %d seed %d, want %d", i, r.Seed, wantSeed)
		}
		if len(r.Final) != 1 || r.Final["Y"] != want.Finals[i][yi] {
			t.Errorf("run %d final %v, want Y=%v", i, r.Final, want.Finals[i][yi])
		}
		if r.Err != "" {
			t.Errorf("run %d error %q", i, r.Err)
		}
	}
	if mean := want.Mean(); e.Mean["Y"] != mean[yi] {
		t.Errorf("mean %v, want %v", e.Mean["Y"], mean[yi])
	}
	if sd := want.Stddev(); e.Stddev["Y"] != sd[yi] {
		t.Errorf("stddev %v, want %v", e.Stddev["Y"], sd[yi])
	}
}

// TestSimulateEnsembleCaching: an ensemble is cacheable when its RNG streams
// are pinned — an explicit seed set or a non-zero base seed — and the seed
// set is part of the key; an unseeded stochastic ensemble never caches.
func TestSimulateEnsembleCaching(t *testing.T) {
	s := New(Config{})
	text := "init X = 1\nX -> Y : slow"

	seeded := SimulateRequest{CRN: text, TEnd: 2, Method: "ssa", Unit: 50, Seeds: []int64{3, 9}}
	do(t, s.Handler(), "POST", "/v1/simulate", seeded)
	if rec := do(t, s.Handler(), "POST", "/v1/simulate", seeded); rec.Header().Get("X-Cache") != "hit" {
		t.Errorf("explicitly seeded ensemble not cached")
	}
	other := seeded
	other.Seeds = []int64{3, 10}
	if rec := do(t, s.Handler(), "POST", "/v1/simulate", other); rec.Header().Get("X-Cache") != "miss" {
		t.Errorf("different seed set served from cache")
	}

	unseeded := SimulateRequest{CRN: text, TEnd: 2, Method: "ssa", Unit: 50, Runs: 3}
	do(t, s.Handler(), "POST", "/v1/simulate", unseeded)
	if rec := do(t, s.Handler(), "POST", "/v1/simulate", unseeded); rec.Header().Get("X-Cache") != "miss" {
		t.Errorf("unseeded ensemble served from cache")
	}
}

// TestSimulateConfigErrorFields: configuration failures carry per-field
// diagnostics in the error envelope.
func TestSimulateConfigErrorFields(t *testing.T) {
	s := New(Config{})
	rec := do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
		CRN: "init X = 1\nX -> Y : slow", // no horizon
	})
	if rec.Code != 400 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	got := decode[errorBody](t, rec)
	if got.Error.Code != CodeInvalidRequest {
		t.Fatalf("code %q", got.Error.Code)
	}
	if len(got.Error.Fields) != 1 || got.Error.Fields[0].Field != "TEnd" {
		t.Fatalf("fields = %+v, want one TEnd entry", got.Error.Fields)
	}
}

// TestSimulateRecordProjection: the record option restricts the returned
// columns, in the requested order.
func TestSimulateRecordProjection(t *testing.T) {
	s := New(Config{})
	rec := do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
		CRN: "init A = 1\nA -> B : slow\nB -> C : fast", TEnd: 5,
		Record: []string{"C", "A"},
	})
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	got := decode[SimulateResponse](t, rec)
	if len(got.Species) != 2 || got.Species[0] != "C" || got.Species[1] != "A" {
		t.Fatalf("species = %v, want [C A]", got.Species)
	}
	for _, row := range got.Rows {
		if len(row) != 2 {
			t.Fatalf("row width %d, want 2", len(row))
		}
	}
}

// TestSimulateExperiment: a named experiment runs through the same endpoint
// and returns its rendered table; the repeat request hits the cache.
func TestSimulateExperiment(t *testing.T) {
	s := New(Config{})
	req := SimulateRequest{Experiment: "E1", Quick: true, Seed: 1}
	rec := do(t, s.Handler(), "POST", "/v1/simulate", req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	got := decode[SimulateResponse](t, rec)
	if got.Result == nil || got.Result.ID != "E1" || len(got.Result.Rows) == 0 {
		t.Fatalf("experiment result missing or empty: %+v", got.Result)
	}
	if rec := do(t, s.Handler(), "POST", "/v1/simulate", req); rec.Header().Get("X-Cache") != "hit" {
		t.Errorf("repeated experiment request not cached")
	}
}

// TestExperimentsList: the registry is browsable.
func TestExperimentsList(t *testing.T) {
	s := New(Config{})
	rec := do(t, s.Handler(), "GET", "/v1/experiments", nil)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	got := decode[map[string][]map[string]any](t, rec)
	if len(got["experiments"]) < 10 {
		t.Fatalf("only %d experiments listed", len(got["experiments"]))
	}
}

// errorBody is the structured error envelope every failure must use.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		Fields  []struct {
			Field   string `json:"field"`
			Message string `json:"message"`
		} `json:"fields"`
	} `json:"error"`
}

// TestSimulateErrors walks the request-validation surface: every failure is
// a structured JSON error with the right status and code.
func TestSimulateErrors(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name   string
		body   any
		status int
		code   string
	}{
		{"malformed JSON", "{nope", 400, CodeInvalidRequest},
		{"unknown field", `{"crn":"x","warp":9}`, 400, CodeInvalidRequest},
		{"neither crn nor experiment", SimulateRequest{TEnd: 5}, 400, CodeInvalidRequest},
		{"both crn and experiment", SimulateRequest{CRN: "init X = 1\nX -> Y : slow", Experiment: "E1", TEnd: 5}, 400, CodeInvalidRequest},
		{"bad method", SimulateRequest{CRN: "init X = 1\nX -> Y : slow", TEnd: 5, Method: "euler"}, 400, CodeInvalidRequest},
		{"bad crn text", SimulateRequest{CRN: "X ->", TEnd: 5}, 400, CodeInvalidRequest},
		{"unused species", SimulateRequest{CRN: "species Ghost\ninit X = 1\nX -> Y : slow", TEnd: 5}, 400, CodeInvalidRequest},
		{"missing horizon", SimulateRequest{CRN: "init X = 1\nX -> Y : slow"}, 400, CodeInvalidRequest},
		{"inverted rates", SimulateRequest{CRN: "init X = 1\nX -> Y : slow", TEnd: 5, Fast: 1, Slow: 100}, 400, CodeInvalidRequest},
		{"negative runs", SimulateRequest{CRN: "init X = 1\nX -> Y : slow", TEnd: 5, Runs: -2}, 400, CodeInvalidRequest},
		{"runs on experiment", SimulateRequest{Experiment: "E1", Runs: 3}, 400, CodeInvalidRequest},
		{"runs/seeds mismatch", SimulateRequest{CRN: "init X = 1\nX -> Y : slow", TEnd: 5, Method: "ssa", Runs: 3, Seeds: []int64{1, 2}}, 400, CodeInvalidRequest},
		{"unknown experiment", SimulateRequest{Experiment: "E99"}, 404, CodeNotFound},
		{"unknown record species", SimulateRequest{CRN: "init X = 1\nX -> Y : slow", TEnd: 5, Record: []string{"Z"}}, 400, CodeInvalidRequest},
	}
	for _, c := range cases {
		rec := do(t, s.Handler(), "POST", "/v1/simulate", c.body)
		if rec.Code != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, rec.Code, c.status, rec.Body.String())
			continue
		}
		got := decode[errorBody](t, rec)
		if got.Error.Code != c.code {
			t.Errorf("%s: code %q, want %q", c.name, got.Error.Code, c.code)
		}
		if got.Error.Message == "" {
			t.Errorf("%s: empty error message", c.name)
		}
	}
}

// TestLimits: the body, species and reaction caps reject with the structured
// too_large / limit_exceeded codes.
func TestLimits(t *testing.T) {
	s := New(Config{Limits: Limits{MaxBodyBytes: 200, MaxSpecies: 3, MaxReactions: 2}})

	big := SimulateRequest{CRN: strings.Repeat("# padding\n", 50) + "init X = 1\nX -> Y : slow", TEnd: 5}
	if rec := do(t, s.Handler(), "POST", "/v1/simulate", big); rec.Code != 413 {
		t.Errorf("oversized body: status %d, want 413", rec.Code)
	}

	fourSpecies := SimulateRequest{CRN: "init A = 1\nA -> B : slow\nC -> D : slow\ninit C = 1", TEnd: 5}
	rec := do(t, s.Handler(), "POST", "/v1/simulate", fourSpecies)
	if rec.Code != 422 || decode[errorBody](t, rec).Error.Code != CodeLimitExceeded {
		t.Errorf("species limit: status %d body %s", rec.Code, rec.Body.String())
	}

	threeReactions := SimulateRequest{CRN: "init A = 1\nA -> B : slow\nB -> A : slow\nA -> B : fast", TEnd: 5}
	rec = do(t, s.Handler(), "POST", "/v1/simulate", threeReactions)
	if rec.Code != 422 || decode[errorBody](t, rec).Error.Code != CodeLimitExceeded {
		t.Errorf("reaction limit: status %d body %s", rec.Code, rec.Body.String())
	}
}

// promLine matches Prometheus text-format sample and comment lines.
var promLine = regexp.MustCompile(`^(# (TYPE|HELP) .*|[A-Za-z_:][A-Za-z0-9_:]*(\{([A-Za-z_][A-Za-z0-9_]*="[^"]*",?)*\})? [-+0-9eE.infNa]+)$`)

// TestMetricsEndpoint: /metrics must be valid text exposition and include
// the request counters the middleware records.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{CRN: "init X = 1\nX -> Y : slow", TEnd: 2})
	rec := do(t, s.Handler(), "GET", "/metrics", nil)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := strings.TrimRight(rec.Body.String(), "\n")
	for _, line := range strings.Split(body, "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("not Prometheus text format: %q", line)
		}
	}
	for _, want := range []string{
		`http_requests_total{route="POST /v1/simulate",code="200"} 1`,
		"http_in_flight",
		`cache_entries{cache="network"}`,
		"server_sims_inflight",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHealthEndpoints: liveness always succeeds; readiness flips to 503 when
// draining starts, and new simulation work is rejected while status reads
// stay served.
func TestHealthEndpoints(t *testing.T) {
	s := New(Config{})
	if rec := do(t, s.Handler(), "GET", "/healthz", nil); rec.Code != 200 {
		t.Fatalf("healthz %d", rec.Code)
	}
	if rec := do(t, s.Handler(), "GET", "/readyz", nil); rec.Code != 200 {
		t.Fatalf("readyz %d before drain", rec.Code)
	}
	s.StartDrain()
	if rec := do(t, s.Handler(), "GET", "/readyz", nil); rec.Code != 503 {
		t.Fatalf("readyz %d while draining, want 503", rec.Code)
	}
	if rec := do(t, s.Handler(), "GET", "/healthz", nil); rec.Code != 200 {
		t.Fatalf("healthz %d while draining", rec.Code)
	}
	rec := do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{CRN: "init X = 1\nX -> Y : slow", TEnd: 2})
	if rec.Code != 503 || decode[errorBody](t, rec).Error.Code != CodeUnavailable {
		t.Fatalf("simulate while draining: status %d body %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s.Handler(), "GET", "/metrics", nil); rec.Code != 200 {
		t.Fatalf("metrics %d while draining", rec.Code)
	}
}

// TestClientDisconnectCancelsSimulation: when the client goes away
// mid-simulation, the server must abort the run through its context —
// freeing the semaphore slot — instead of integrating a huge horizon to
// completion. The canceled run is visible in server_sims_canceled_total.
func TestClientDisconnectCancelsSimulation(t *testing.T) {
	s := New(Config{MaxConcurrentSims: 1, SimTimeout: time.Minute})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// A horizon this long takes minutes to integrate; the client hangs up
	// after 100ms.
	body, err := json.Marshal(SimulateRequest{CRN: clockText(t), TEnd: 1e6, Fast: 300, Slow: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded; expected the client timeout to cut it off")
	}

	// The single semaphore slot must come free promptly: the cancellation
	// counter ticks and a short follow-up simulation gets through.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s.Registry().Snapshot()["server_sims_canceled_total"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("canceled simulation never recorded; is the run still holding the slot?")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rec := do(t, s.Handler(), "POST", "/v1/simulate", SimulateRequest{
		CRN: "init X = 1\nX -> Y : slow", TEnd: 2,
	})
	if rec.Code != 200 {
		t.Fatalf("follow-up simulate blocked: status %d body %s", rec.Code, rec.Body.String())
	}
	if got := s.Registry().Snapshot()["server_sims_inflight"]; got != 0 {
		t.Fatalf("sims in flight after drain = %g, want 0", got)
	}
}

// TestCacheDisabled: a negative CacheSize turns both caches off.
func TestCacheDisabled(t *testing.T) {
	s := New(Config{CacheSize: -1})
	req := SimulateRequest{CRN: "init X = 1\nX -> Y : slow", TEnd: 2}
	do(t, s.Handler(), "POST", "/v1/simulate", req)
	if rec := do(t, s.Handler(), "POST", "/v1/simulate", req); rec.Header().Get("X-Cache") != "miss" {
		t.Fatal("disabled cache served a hit")
	}
}

// TestLRUEviction: the oldest entry falls out once the cache overflows.
func TestLRUEviction(t *testing.T) {
	s := New(Config{CacheSize: 2})
	reqs := make([]SimulateRequest, 3)
	for i := range reqs {
		reqs[i] = SimulateRequest{
			CRN: fmt.Sprintf("init X = 1\nX -> Y : slow %d", i+1), TEnd: 2,
		}
		do(t, s.Handler(), "POST", "/v1/simulate", reqs[i])
	}
	// reqs[0] was evicted by reqs[2]; reqs[1] and reqs[2] remain.
	if rec := do(t, s.Handler(), "POST", "/v1/simulate", reqs[0]); rec.Header().Get("X-Cache") != "miss" {
		t.Error("evicted entry served as hit")
	}
	if rec := do(t, s.Handler(), "POST", "/v1/simulate", reqs[2]); rec.Header().Get("X-Cache") != "hit" {
		t.Error("recent entry missed")
	}
}
