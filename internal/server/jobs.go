package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/sim"
	"repro/internal/trace"
)

// JobRequest is the body of POST /v1/jobs: a parameter sweep of one CRN,
// executed through the multi-run engine (sim.RunMany). The sweep is the
// cross product of Ratios (fast/slow rate ratios; empty means the single
// Fast/Slow pair) and Runs replicates (default 1), each replicate receiving
// a deterministic seed derived from Seed — the whole sweep is reproducible
// from the request alone. Stochastic sweeps without watchers run on the SoA
// ensemble engine (several points per kernel pass); watched or deterministic
// points run through the scalar backends on the batch pool.
type JobRequest struct {
	CRN string `json:"crn"`

	Method      string  `json:"method,omitempty"`
	TEnd        float64 `json:"t_end"`
	SampleEvery float64 `json:"sample_every,omitempty"`
	Fast        float64 `json:"fast,omitempty"`
	Slow        float64 `json:"slow,omitempty"`
	Unit        float64 `json:"unit,omitempty"`
	Seed        int64   `json:"seed,omitempty"`

	Runs   int       `json:"runs,omitempty"`   // replicates per ratio; default 1
	Ratios []float64 `json:"ratios,omitempty"` // fast/slow ratios to sweep (slow stays fixed)

	// Record restricts the reported finals to these species (default: all).
	Record []string `json:"record,omitempty"`

	// TimeoutSeconds bounds each unit of sweep work (an ensemble block or a
	// scalar point), capped by the server ceiling.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`

	// Watch attaches the default semantic watchers (clock edges, dominant
	// phase) to every sweep point; their events stream live over
	// GET /v1/jobs/{id}/events and /v1/stream. Watched points carry per-run
	// observers and therefore run scalar, off the ensemble fast path.
	Watch bool `json:"watch,omitempty"`
	// ClockHealth, when set, attaches the clock-health analyzer to every
	// sweep point: phase overlap, indicator leakage, period jitter and duty
	// drift raise structured alerts on the event stream, the span trace and
	// the clock_alerts_total metric.
	ClockHealth *ClockHealthSpec `json:"clock_health,omitempty"`
}

// ClockHealthSpec is the JSON shape of the obs.ClockHealth analyzer config:
// the phase groups in cycle order, optionally the absence indicators aligned
// with them, and the rule thresholds (zero values select the analyzer's
// documented defaults; negative values disable the respective rule).
type ClockHealthSpec struct {
	Phases     [][]string `json:"phases"`               // species per phase group, cycle order
	Names      []string   `json:"names,omitempty"`      // optional display names per group
	Indicators []string   `json:"indicators,omitempty"` // absence indicators aligned with Phases
	Threshold  float64    `json:"threshold"`            // occupancy threshold, required
	LeakEps    float64    `json:"leak_eps,omitempty"`
	MaxJitter  float64    `json:"max_jitter,omitempty"`
	MaxDuty    float64    `json:"max_duty,omitempty"`
	MinCycles  int        `json:"min_cycles,omitempty"`
}

// watcher builds a fresh analyzer from the spec. Watchers keep per-run state,
// so every sweep point gets its own instance.
func (c *ClockHealthSpec) watcher() *obs.ClockHealth {
	groups := make([]obs.PhaseGroup, len(c.Phases))
	for i, sp := range c.Phases {
		name := fmt.Sprintf("phase%d", i)
		if i < len(c.Names) && c.Names[i] != "" {
			name = c.Names[i]
		}
		groups[i] = obs.PhaseGroup{Name: name, Species: sp}
	}
	return &obs.ClockHealth{
		Phases: groups, Indicators: c.Indicators, Threshold: c.Threshold,
		LeakEps: c.LeakEps, MaxJitter: c.MaxJitter, MaxDuty: c.MaxDuty,
		MinCycles: c.MinCycles,
	}
}

// PointResult is one sweep point's outcome.
type PointResult struct {
	Index int                `json:"index"`
	Ratio float64            `json:"ratio,omitempty"` // fast/slow used (ratio sweeps)
	Seed  int64              `json:"seed"`
	Final map[string]float64 `json:"final,omitempty"`
	Err   string             `json:"error,omitempty"`
}

// JobStatus is the body of GET /v1/jobs/{id}. Results appear only once the
// job has drained (State done/failed/canceled); progress counters are live.
// A job is "queued" from admission until its first sweep point begins
// executing (a simulation slot acquired locally, or a partition dispatched
// to a cluster worker), then "running" until it reaches a terminal state —
// and a job canceled while still queued goes terminal like any other.
type JobStatus struct {
	ID        string        `json:"id"`
	State     string        `json:"state"` // queued, running, done, failed, canceled
	Created   time.Time     `json:"created"`
	Completed int           `json:"completed"`
	Failed    int           `json:"failed"`
	Total     int           `json:"total"`
	Error     string        `json:"error,omitempty"`
	Results   []PointResult `json:"results,omitempty"`
}

// jobRun tracks one asynchronously launched RunMany: live per-point progress
// from atomic counters, cooperative cancellation, and the final error once
// the engine drains. It is the server-side analogue of batch.Handle, with
// point (not work-item) granularity — a laned ensemble block reports each of
// its lanes as it retires.
type jobRun struct {
	total     int
	completed atomic.Int64
	failed    atomic.Int64

	cancel context.CancelCauseFunc
	done   chan struct{}
	err    error // written once, before done closes
}

// Progress returns points finished so far and the total. Points skipped by
// cancellation count toward neither.
func (h *jobRun) Progress() (completed, failed, total int) {
	return int(h.completed.Load()), int(h.failed.Load()), h.total
}

// Cancel asks the engine to stop; it does not block.
func (h *jobRun) Cancel(cause error) { h.cancel(cause) }

// Done returns a channel closed once the engine has drained.
func (h *jobRun) Done() <-chan struct{} { return h.done }

// Poll reports whether the job has drained, and its final error if so.
func (h *jobRun) Poll() (error, bool) {
	select {
	case <-h.done:
		return h.err, true
	default:
		return nil, false
	}
}

// job is one accepted sweep. results is written by the engine at disjoint
// indexes while running and read only after run reports done, so the slice
// needs no lock; everything a status poll reads concurrently is either
// immutable or atomic.
type job struct {
	id      string
	created time.Time
	total   int
	run     *jobRun
	results []PointResult

	canceled atomic.Bool
	finished atomic.Bool
	started  atomic.Bool  // first sweep point began executing
	pending  atomic.Int64 // sweep points not yet finished (gauge bookkeeping)
}

// terminal reports whether a status is one of the three end states.
func (st JobStatus) terminal() bool {
	return st.State == "done" || st.State == "failed" || st.State == "canceled"
}

// status snapshots the job for a response.
func (j *job) status(includeResults bool) JobStatus {
	st := JobStatus{ID: j.id, Created: j.created, State: "running"}
	if !j.started.Load() {
		st.State = "queued"
	}
	st.Completed, st.Failed, st.Total = j.run.Progress()
	if err, done := j.run.Poll(); done {
		switch {
		case j.canceled.Load():
			st.State = "canceled"
		case err != nil && st.Completed == 0:
			st.State = "failed"
		default:
			st.State = "done"
		}
		if err != nil {
			st.Error = err.Error()
		}
		if includeResults {
			st.Results = j.results
		}
	}
	return st
}

// jobStore owns every accepted job: admission (active-job limit), lookup,
// retention of finished jobs, and drain-on-shutdown.
type jobStore struct {
	s *Server

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // creation order; finished jobs evict oldest-first
	seq    int64
	active int
}

func newJobStore(s *Server) *jobStore {
	return &jobStore{s: s, jobs: make(map[string]*job)}
}

// get looks a job up by id.
func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// submit validates the sweep, launches it through sim.RunMany and registers
// the job. parent, when non-nil, is the submitting request's span: the job
// runs under a child span of it, so the trace of the POST shows the whole
// asynchronous fan-out — per-work-item batch.job spans for scalar points,
// sim.ensemble block spans for laned ones.
func (st *jobStore) submit(req *JobRequest, parent *span.Span) (*job, error) {
	s := st.s
	if req.CRN == "" {
		return nil, errf(http.StatusBadRequest, CodeInvalidRequest, "crn is required")
	}
	method, err := sim.ParseMethod(req.Method)
	if err != nil {
		return nil, errf(http.StatusBadRequest, CodeInvalidRequest, "%v", err)
	}
	net, err := s.loadNetwork(req.CRN)
	if err != nil {
		return nil, err
	}
	if req.ClockHealth != nil {
		// Fail fast with a 400 instead of failing every sweep point at Bind.
		if err := req.ClockHealth.watcher().Bind(net.SpeciesNames()); err != nil {
			return nil, errf(http.StatusBadRequest, CodeInvalidRequest, "clock_health: %v", err)
		}
	}
	for _, name := range req.Record {
		if _, ok := net.SpeciesIndex(name); !ok {
			return nil, errf(http.StatusBadRequest, CodeInvalidRequest,
				"record species %q not in the network", name)
		}
	}
	runs := req.Runs
	if runs <= 0 {
		runs = 1
	}
	points := runs
	if len(req.Ratios) > 0 {
		points = runs * len(req.Ratios)
		for _, ratio := range req.Ratios {
			if ratio < 1 {
				return nil, errf(http.StatusBadRequest, CodeInvalidRequest,
					"ratio %g below 1 inverts the fast/slow dichotomy", ratio)
			}
		}
	}
	if limit := s.cfg.Limits.MaxSweepPoints; points > limit {
		return nil, errf(http.StatusUnprocessableEntity, CodeLimitExceeded,
			"sweep has %d points, limit is %d", points, limit)
	}
	base := SimulateRequest{
		Method: req.Method, TEnd: req.TEnd, SampleEvery: req.SampleEvery,
		Fast: req.Fast, Slow: req.Slow, Unit: req.Unit,
	}
	baseCfg := base.simConfig(method, sim.SolverAuto)
	baseCfg.Seed = req.Seed
	if err := baseCfg.Validate(); err != nil {
		return nil, configError(err)
	}
	baseRates := baseCfg.Rates

	j := &job{created: time.Now(), total: points}
	j.results = make([]PointResult, points)
	pointSeed := func(i int) int64 { return batch.DeriveSeed(req.Seed, i) }
	pointRatio := func(i int) float64 {
		if len(req.Ratios) == 0 {
			return 0
		}
		return req.Ratios[i/runs]
	}
	for i := range j.results {
		// Prefill identity and a "skipped" marker: points that never start
		// because the job is canceled keep an explanatory entry, and points
		// that do run overwrite it.
		j.results[i] = PointResult{
			Index: i, Ratio: pointRatio(i), Seed: pointSeed(i),
			Err: "skipped: job ended before this point started",
		}
	}
	j.pending.Store(int64(points))

	// Reserve an admission slot and an id; the job is published to the store
	// only after its run handle exists, so status polls never see a
	// half-built job.
	st.mu.Lock()
	if st.active >= s.cfg.Limits.MaxActiveJobs {
		st.mu.Unlock()
		return nil, errf(http.StatusTooManyRequests, CodeUnavailable,
			"%d jobs already active, limit is %d", st.active, s.cfg.Limits.MaxActiveJobs)
	}
	st.seq++
	j.id = fmt.Sprintf("job-%06d", st.seq)
	st.active++
	st.mu.Unlock()

	// The job span ties the asynchronous fan-out into the submit request's
	// trace: every scalar point's batch.job[i] span and every ensemble
	// block's sim.ensemble span become descendants of this one, and the
	// engine stamps ensemble.* occupancy attributes on it at completion.
	jobSpan := parent.Child("job " + j.id)
	jobSpan.SetAttr("job.id", j.id)
	jobSpan.SetAttr("job.points", points)
	jobSpan.SetAttr("job.method", method.String())
	parent.SetAttr("job.id", j.id)

	pendingG := s.reg.Gauge("server_job_points_pending")
	activeG := s.reg.Gauge("server_jobs_active")
	// Lifecycle gauges: a job is queued from admission until its first point
	// executes, then active until it goes terminal. queued + active together
	// always equal the live (not yet drained) job count.
	jobsQueuedG := s.reg.Gauge("jobs_queued")
	jobsActiveG := s.reg.Gauge("jobs_active")
	s.reg.Counter("server_jobs_submitted_total").Inc()
	pendingG.Add(float64(points))
	activeG.Add(1)
	jobsQueuedG.Add(1)

	// markStarted flips the job queued -> running exactly once: locally when
	// the first point wins a simulation slot, on the cluster path when the
	// first partition is about to dispatch.
	markStarted := func() {
		if j.started.CompareAndSwap(false, true) {
			jobsQueuedG.Add(-1)
			jobsActiveG.Add(1)
		}
	}

	watched := req.Watch || req.ClockHealth != nil
	bc := sim.BatchConfig{
		Base:       baseCfg,
		Runs:       points,
		Workers:    s.cfg.Workers,
		FinalsOnly: true,
		Metrics:    s.reg,
		JobTimeout: s.deadline(req.TimeoutSeconds),
		Gate: func(ctx context.Context) (func(), error) {
			if _, err := s.acquireSim(ctx); err != nil {
				return nil, err
			}
			markStarted()
			return s.releaseSim, nil
		},
		Configure: func(i int, cfg *sim.Config) {
			if ratio := pointRatio(i); ratio > 0 {
				cfg.Rates = sim.Rates{Fast: baseRates.Slow * ratio, Slow: baseRates.Slow}
			}
			if watched {
				// Watchers carry per-run state and their events feed the SSE
				// broker; both force the point onto the scalar backends.
				cfg.Obs = &obs.BrokerObserver{B: s.broker, Job: j.id}
				if req.Watch {
					cfg.Watchers = sim.AutoWatchers(net)
				}
				if req.ClockHealth != nil {
					cfg.Watchers = append(cfg.Watchers, req.ClockHealth.watcher())
				}
			}
		},
	}

	runCtx, cancel := context.WithCancelCause(span.NewContext(context.Background(), jobSpan))
	run := &jobRun{total: points, cancel: cancel, done: make(chan struct{})}
	j.run = run

	// Per-point progress: the engine reports each point as it completes —
	// lanes of an ensemble block retire individually, so progress stays
	// point-granular even on the SoA fast path. Finals are projected from
	// the ensemble after the drain; only identity and errors are recorded
	// here.
	bc.OnResult = func(i int, _ *trace.Trace, err error) {
		if err != nil && context.Cause(runCtx) != nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The job was canceled while this point waited for its slot: it
			// never ran, so it keeps the prefilled "skipped" marker instead
			// of counting as a failure.
			j.pending.Add(-1)
			pendingG.Add(-1)
			return
		}
		pr := PointResult{Index: i, Ratio: pointRatio(i), Seed: pointSeed(i)}
		if err != nil {
			pr.Err = err.Error()
			run.failed.Add(1)
		} else {
			run.completed.Add(1)
		}
		j.results[i] = pr
		j.pending.Add(-1)
		pendingG.Add(-1)
		s.broker.Publish(obs.StreamEvent{Kind: "job_progress", Job: j.id, Data: map[string]any{
			"index": i, "done": j.total - int(j.pending.Load()), "total": j.total,
		}})
	}

	// finish settles the job whichever engine ran it: gauge bookkeeping
	// (a job canceled while still queued releases the queued gauge and goes
	// terminal like any other), state resolution, span closure, the terminal
	// SSE event, and retention.
	finish := func(ferr error) {
		run.err = ferr
		j.finished.Store(true)
		if leftover := j.pending.Swap(0); leftover > 0 {
			pendingG.Add(float64(-leftover)) // points skipped by cancellation
		}
		activeG.Add(-1)
		if j.started.Load() {
			jobsActiveG.Add(-1)
		} else {
			jobsQueuedG.Add(-1)
		}
		completed := int(run.completed.Load())
		failed := int(run.failed.Load())
		state := "done"
		switch {
		case j.canceled.Load():
			s.reg.Counter("server_jobs_canceled_total").Inc()
			state = "canceled"
		case ferr != nil && completed == 0:
			s.reg.Counter("server_jobs_failed_total").Inc()
			state = "failed"
		default:
			s.reg.Counter("server_jobs_completed_total").Inc()
		}
		jobSpan.SetAttr("job.state", state)
		jobSpan.SetAttr("job.completed", completed)
		jobSpan.SetAttr("job.failed", failed)
		if state == "failed" {
			jobSpan.SetError(ferr)
		}
		jobSpan.End()
		s.broker.Publish(obs.StreamEvent{Kind: "job_done", Job: j.id, Data: map[string]any{
			"state": state, "completed": completed,
			"failed": failed, "total": j.total,
		}})
		st.retire()
	}

	if s.coord != nil && !watched && s.coord.AliveCount() > 0 {
		// Cluster path: the coordinator shards the sweep into partitions and
		// dispatches them to workers; outcomes merge back by global index, so
		// the results are bit-identical to the local path below (watched jobs
		// always run locally — their observers hold per-process state).
		sw := &cluster.Sweep{
			CRN: req.CRN, Method: req.Method, TEnd: req.TEnd,
			SampleEvery: req.SampleEvery, Fast: req.Fast, Slow: req.Slow,
			Unit: req.Unit, Seed: req.Seed, Runs: runs, Ratios: req.Ratios,
			Record: req.Record, TimeoutSeconds: req.TimeoutSeconds,
		}
		jobSpan.SetAttr("job.cluster", true)
		deliver := func(outs []cluster.Outcome) {
			for _, o := range outs {
				pr := PointResult{Index: o.Index, Ratio: pointRatio(o.Index),
					Seed: pointSeed(o.Index), Final: o.Final}
				if o.Err != "" {
					pr.Err = o.Err
					run.failed.Add(1)
				} else {
					run.completed.Add(1)
				}
				j.results[o.Index] = pr
				j.pending.Add(-1)
				pendingG.Add(-1)
			}
			s.broker.Publish(obs.StreamEvent{Kind: "job_progress", Job: j.id, Data: map[string]any{
				"done": j.total - int(j.pending.Load()), "total": j.total,
			}})
		}
		go func() {
			defer close(run.done)
			ferr := s.coord.Run(runCtx, j.id, sw, deliver, markStarted)
			cancel(nil)
			if ferr == nil {
				// Mirror the single-node job error: the first failed point.
				for i := range j.results {
					if j.results[i].Err != "" {
						ferr = fmt.Errorf("run %d: %s", i, j.results[i].Err)
						break
					}
				}
			}
			finish(ferr)
		}()
	} else {
		go func() {
			defer close(run.done)
			ens, runErr := sim.RunMany(runCtx, net, bc)
			cancel(nil)

			// Project finals for the points that succeeded; failed and skipped
			// points keep the error text already in their slots.
			for i := range j.results {
				if ens == nil || ens.Errs[i] != nil || ens.Finals[i] == nil {
					continue
				}
				final := make(map[string]float64, len(req.Record))
				if len(req.Record) > 0 {
					for _, name := range req.Record {
						if col, ok := ens.Index(name); ok {
							final[name] = ens.Finals[i][col]
						}
					}
				} else {
					for col, name := range ens.Names {
						final[name] = ens.Finals[i][col]
					}
				}
				j.results[i].Final = final
			}

			ferr := runErr
			if ferr == nil && ens != nil {
				ferr = ens.Err()
			}
			finish(ferr)
		}()
	}

	st.mu.Lock()
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	st.mu.Unlock()
	return j, nil
}

// retire decrements the active count and evicts the oldest finished jobs
// beyond the retention cap, keeping status URLs of recent jobs valid without
// growing without bound.
func (st *jobStore) retire() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.active--
	finished := 0
	for _, id := range st.order {
		if st.jobs[id] != nil && st.jobs[id].finished.Load() {
			finished++
		}
	}
	if over := finished - st.s.cfg.RetainJobs; over > 0 {
		kept := st.order[:0]
		for _, id := range st.order {
			if over > 0 && st.jobs[id] != nil && st.jobs[id].finished.Load() {
				delete(st.jobs, id)
				st.s.jobsEvicted.Inc()
				over--
				continue
			}
			kept = append(kept, id)
		}
		st.order = kept
	}
}

// list snapshots every retained job in creation order.
func (st *jobStore) list() []JobStatus {
	st.mu.Lock()
	ids := append([]string(nil), st.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j := st.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	st.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status(false)
	}
	return out
}

// drain blocks until every active job finishes or ctx expires; stragglers
// are then canceled and awaited. Returns how many jobs were force-canceled.
func (st *jobStore) drain(ctx context.Context) int {
	st.mu.Lock()
	var live []*job
	for _, j := range st.jobs {
		if !j.finished.Load() {
			live = append(live, j)
		}
	}
	st.mu.Unlock()

	forced := 0
	for _, j := range live {
		select {
		case <-j.run.Done():
		case <-ctx.Done():
			j.canceled.Store(true)
			j.run.Cancel(errors.New("server draining"))
			forced++
			<-j.run.Done()
		}
	}
	return forced
}

// handleJobSubmit is POST /v1/jobs.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, errf(http.StatusServiceUnavailable, CodeUnavailable, "server is draining"))
		return
	}
	var req JobRequest
	if err := s.decodeRequest(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	j, err := s.jobs.submit(&req, span.FromContext(r.Context()))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status(false))
}

// handleJobStatus is GET /v1/jobs/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, errf(http.StatusNotFound, CodeNotFound, "unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

// handleJobList is GET /v1/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

// handleJobCancel is DELETE /v1/jobs/{id}. Canceling a finished job is a
// no-op that reports the final state, so retries are harmless.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, errf(http.StatusNotFound, CodeNotFound, "unknown job %q", r.PathValue("id")))
		return
	}
	if _, done := j.run.Poll(); !done {
		j.canceled.Store(true)
		j.run.Cancel(errors.New("canceled by client"))
	}
	writeJSON(w, http.StatusOK, j.status(false))
}
