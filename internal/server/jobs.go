package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/sim"
)

// JobRequest is the body of POST /v1/jobs: a parameter sweep of one CRN,
// fanned across the batch worker pool. The sweep is the cross product of
// Ratios (fast/slow rate ratios; empty means the single Fast/Slow pair) and
// Runs replicates (default 1), each replicate receiving a deterministic seed
// derived from Seed by the batch engine — the whole sweep is reproducible
// from the request alone.
type JobRequest struct {
	CRN string `json:"crn"`

	Method      string  `json:"method,omitempty"`
	TEnd        float64 `json:"t_end"`
	SampleEvery float64 `json:"sample_every,omitempty"`
	Fast        float64 `json:"fast,omitempty"`
	Slow        float64 `json:"slow,omitempty"`
	Unit        float64 `json:"unit,omitempty"`
	Seed        int64   `json:"seed,omitempty"`

	Runs   int       `json:"runs,omitempty"`   // replicates per ratio; default 1
	Ratios []float64 `json:"ratios,omitempty"` // fast/slow ratios to sweep (slow stays fixed)

	// Record restricts the reported finals to these species (default: all).
	Record []string `json:"record,omitempty"`

	// TimeoutSeconds bounds each sweep point, capped by the server ceiling.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`

	// Watch attaches the default semantic watchers (clock edges, dominant
	// phase) to every sweep point; their events stream live over
	// GET /v1/jobs/{id}/events and /v1/stream.
	Watch bool `json:"watch,omitempty"`
	// ClockHealth, when set, attaches the clock-health analyzer to every
	// sweep point: phase overlap, indicator leakage, period jitter and duty
	// drift raise structured alerts on the event stream, the span trace and
	// the clock_alerts_total metric.
	ClockHealth *ClockHealthSpec `json:"clock_health,omitempty"`
}

// ClockHealthSpec is the JSON shape of the obs.ClockHealth analyzer config:
// the phase groups in cycle order, optionally the absence indicators aligned
// with them, and the rule thresholds (zero values select the analyzer's
// documented defaults; negative values disable the respective rule).
type ClockHealthSpec struct {
	Phases     [][]string `json:"phases"`               // species per phase group, cycle order
	Names      []string   `json:"names,omitempty"`      // optional display names per group
	Indicators []string   `json:"indicators,omitempty"` // absence indicators aligned with Phases
	Threshold  float64    `json:"threshold"`            // occupancy threshold, required
	LeakEps    float64    `json:"leak_eps,omitempty"`
	MaxJitter  float64    `json:"max_jitter,omitempty"`
	MaxDuty    float64    `json:"max_duty,omitempty"`
	MinCycles  int        `json:"min_cycles,omitempty"`
}

// watcher builds a fresh analyzer from the spec. Watchers keep per-run state,
// so every sweep point gets its own instance.
func (c *ClockHealthSpec) watcher() *obs.ClockHealth {
	groups := make([]obs.PhaseGroup, len(c.Phases))
	for i, sp := range c.Phases {
		name := fmt.Sprintf("phase%d", i)
		if i < len(c.Names) && c.Names[i] != "" {
			name = c.Names[i]
		}
		groups[i] = obs.PhaseGroup{Name: name, Species: sp}
	}
	return &obs.ClockHealth{
		Phases: groups, Indicators: c.Indicators, Threshold: c.Threshold,
		LeakEps: c.LeakEps, MaxJitter: c.MaxJitter, MaxDuty: c.MaxDuty,
		MinCycles: c.MinCycles,
	}
}

// PointResult is one sweep point's outcome.
type PointResult struct {
	Index int                `json:"index"`
	Ratio float64            `json:"ratio,omitempty"` // fast/slow used (ratio sweeps)
	Seed  int64              `json:"seed"`
	Final map[string]float64 `json:"final,omitempty"`
	Err   string             `json:"error,omitempty"`
}

// JobStatus is the body of GET /v1/jobs/{id}. Results appear only once the
// job has drained (State done/failed/canceled); progress counters are live.
type JobStatus struct {
	ID        string        `json:"id"`
	State     string        `json:"state"` // running, done, failed, canceled
	Created   time.Time     `json:"created"`
	Completed int           `json:"completed"`
	Failed    int           `json:"failed"`
	Total     int           `json:"total"`
	Error     string        `json:"error,omitempty"`
	Results   []PointResult `json:"results,omitempty"`
}

// job is one accepted sweep. results is written by pool workers at disjoint
// indexes while running and read only after the handle reports done, so the
// slice needs no lock; everything a status poll reads concurrently is either
// immutable or atomic.
type job struct {
	id      string
	created time.Time
	total   int
	handle  *batch.Handle
	results []PointResult

	canceled atomic.Bool
	finished atomic.Bool
	pending  atomic.Int64 // sweep points not yet finished (gauge bookkeeping)
}

// status snapshots the job for a response.
func (j *job) status(includeResults bool) JobStatus {
	st := JobStatus{ID: j.id, Created: j.created, State: "running"}
	st.Completed, st.Failed, st.Total = j.handle.Progress()
	if rep, err, done := j.handle.Poll(); done {
		st.Completed, st.Failed = rep.Completed, len(rep.Errors)
		switch {
		case j.canceled.Load():
			st.State = "canceled"
		case err != nil && rep.Completed == 0:
			st.State = "failed"
		default:
			st.State = "done"
		}
		if err != nil {
			st.Error = err.Error()
		}
		if includeResults {
			st.Results = j.results
		}
	}
	return st
}

// jobStore owns every accepted job: admission (active-job limit), lookup,
// retention of finished jobs, and drain-on-shutdown.
type jobStore struct {
	s *Server

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // creation order; finished jobs evict oldest-first
	seq    int64
	active int
}

func newJobStore(s *Server) *jobStore {
	return &jobStore{s: s, jobs: make(map[string]*job)}
}

// get looks a job up by id.
func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// submit validates the sweep, launches it on the batch pool and registers
// the job. parent, when non-nil, is the submitting request's span: the job
// runs under a child span of it, so the trace of the POST shows the whole
// asynchronous fan-out.
func (st *jobStore) submit(req *JobRequest, parent *span.Span) (*job, error) {
	s := st.s
	if req.CRN == "" {
		return nil, errf(http.StatusBadRequest, CodeInvalidRequest, "crn is required")
	}
	method, err := sim.ParseMethod(req.Method)
	if err != nil {
		return nil, errf(http.StatusBadRequest, CodeInvalidRequest, "%v", err)
	}
	net, err := s.loadNetwork(req.CRN)
	if err != nil {
		return nil, err
	}
	if req.ClockHealth != nil {
		// Fail fast with a 400 instead of failing every sweep point at Bind.
		if err := req.ClockHealth.watcher().Bind(net.SpeciesNames()); err != nil {
			return nil, errf(http.StatusBadRequest, CodeInvalidRequest, "clock_health: %v", err)
		}
	}
	runs := req.Runs
	if runs <= 0 {
		runs = 1
	}
	points := runs
	if len(req.Ratios) > 0 {
		points = runs * len(req.Ratios)
		for _, ratio := range req.Ratios {
			if ratio < 1 {
				return nil, errf(http.StatusBadRequest, CodeInvalidRequest,
					"ratio %g below 1 inverts the fast/slow dichotomy", ratio)
			}
		}
	}
	if limit := s.cfg.Limits.MaxSweepPoints; points > limit {
		return nil, errf(http.StatusUnprocessableEntity, CodeLimitExceeded,
			"sweep has %d points, limit is %d", points, limit)
	}
	base := SimulateRequest{
		Method: req.Method, TEnd: req.TEnd, SampleEvery: req.SampleEvery,
		Fast: req.Fast, Slow: req.Slow, Unit: req.Unit,
	}
	baseRates := base.simConfig(method).Rates

	j := &job{created: time.Now(), total: points}
	j.results = make([]PointResult, points)
	for i := range j.results {
		// Prefill identity and a "skipped" marker: points that never start
		// because the job is canceled keep an explanatory entry, and points
		// that do run overwrite it.
		ratio := 0.0
		if len(req.Ratios) > 0 {
			ratio = req.Ratios[i/runs]
		}
		j.results[i] = PointResult{
			Index: i, Ratio: ratio, Seed: batch.DeriveSeed(req.Seed, i),
			Err: "skipped: job ended before this point started",
		}
	}
	j.pending.Store(int64(points))

	// Reserve an admission slot and an id; the job is published to the store
	// only after its handle exists, so status polls never see a half-built
	// job.
	st.mu.Lock()
	if st.active >= s.cfg.Limits.MaxActiveJobs {
		st.mu.Unlock()
		return nil, errf(http.StatusTooManyRequests, CodeUnavailable,
			"%d jobs already active, limit is %d", st.active, s.cfg.Limits.MaxActiveJobs)
	}
	st.seq++
	j.id = fmt.Sprintf("job-%06d", st.seq)
	st.active++
	st.mu.Unlock()

	// The job span ties the asynchronous fan-out into the submit request's
	// trace: every sweep point's batch.job[i] span (ID derived from the job
	// index) and the sim span under it become descendants of this one.
	jobSpan := parent.Child("job " + j.id)
	jobSpan.SetAttr("job.id", j.id)
	jobSpan.SetAttr("job.points", points)
	jobSpan.SetAttr("job.method", method.String())
	parent.SetAttr("job.id", j.id)

	pendingG := s.reg.Gauge("server_job_points_pending")
	activeG := s.reg.Gauge("server_jobs_active")
	s.reg.Counter("server_jobs_submitted_total").Inc()
	pendingG.Add(float64(points))
	activeG.Add(1)

	fn := func(ctx context.Context, p batch.Point) error {
		defer func() {
			j.pending.Add(-1)
			pendingG.Add(-1)
			s.broker.Publish(obs.StreamEvent{Kind: "job_progress", Job: j.id, Data: map[string]any{
				"index": p.Index, "done": j.total - int(j.pending.Load()), "total": j.total,
			}})
		}()
		cfg := base.simConfig(method)
		cfg.Seed = p.Seed
		cfg.Obs = obs.Multi(p.Obs, &obs.BrokerObserver{B: s.broker, Job: j.id})
		if req.Watch {
			cfg.Watchers = sim.AutoWatchers(net)
		}
		if req.ClockHealth != nil {
			cfg.Watchers = append(cfg.Watchers, req.ClockHealth.watcher())
		}
		ratio := 0.0
		if len(req.Ratios) > 0 {
			ratio = req.Ratios[p.Index/runs]
			cfg.Rates = sim.Rates{Fast: baseRates.Slow * ratio, Slow: baseRates.Slow}
		}
		pr := PointResult{Index: p.Index, Ratio: ratio, Seed: p.Seed}
		if _, err := s.acquireSim(ctx); err != nil {
			pr.Err = err.Error()
			j.results[p.Index] = pr
			return err
		}
		defer s.releaseSim()
		tr, err := sim.Run(ctx, net, cfg)
		if err != nil {
			pr.Err = err.Error()
			j.results[p.Index] = pr
			return err
		}
		final := make(map[string]float64)
		if len(req.Record) > 0 {
			for _, name := range req.Record {
				if _, ok := tr.Index(name); !ok {
					pr.Err = fmt.Sprintf("record species %q not in the network", name)
					j.results[p.Index] = pr
					return errors.New(pr.Err)
				}
				final[name] = tr.Final(name)
			}
		} else {
			for _, name := range tr.Names {
				final[name] = tr.Final(name)
			}
		}
		pr.Final = final
		j.results[p.Index] = pr
		return nil
	}
	j.handle = batch.Go(span.NewContext(context.Background(), jobSpan), points, fn, batch.Options{
		Workers:    s.cfg.Workers,
		Seed:       req.Seed,
		JobTimeout: s.deadline(req.TimeoutSeconds),
		Policy:     batch.CollectAll,
		Metrics:    s.reg,
	})
	st.mu.Lock()
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	st.mu.Unlock()

	// Completion watcher: close out the accounting, the job span and the
	// event stream, then evict old jobs.
	go func() {
		rep, err := j.handle.Wait()
		j.finished.Store(true)
		if leftover := j.pending.Swap(0); leftover > 0 {
			pendingG.Add(float64(-leftover)) // points skipped by cancellation
		}
		activeG.Add(-1)
		state := "done"
		switch {
		case j.canceled.Load():
			s.reg.Counter("server_jobs_canceled_total").Inc()
			state = "canceled"
		case err != nil && rep.Completed == 0:
			s.reg.Counter("server_jobs_failed_total").Inc()
			state = "failed"
		default:
			s.reg.Counter("server_jobs_completed_total").Inc()
		}
		jobSpan.SetAttr("job.state", state)
		jobSpan.SetAttr("job.completed", rep.Completed)
		jobSpan.SetAttr("job.failed", len(rep.Errors))
		if state == "failed" {
			jobSpan.SetError(err)
		}
		jobSpan.End()
		s.broker.Publish(obs.StreamEvent{Kind: "job_done", Job: j.id, Data: map[string]any{
			"state": state, "completed": rep.Completed,
			"failed": len(rep.Errors), "total": j.total,
		}})
		st.retire()
	}()
	return j, nil
}

// retire decrements the active count and evicts the oldest finished jobs
// beyond the retention cap, keeping status URLs of recent jobs valid without
// growing without bound.
func (st *jobStore) retire() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.active--
	finished := 0
	for _, id := range st.order {
		if st.jobs[id] != nil && st.jobs[id].finished.Load() {
			finished++
		}
	}
	if over := finished - st.s.cfg.RetainJobs; over > 0 {
		kept := st.order[:0]
		for _, id := range st.order {
			if over > 0 && st.jobs[id] != nil && st.jobs[id].finished.Load() {
				delete(st.jobs, id)
				st.s.jobsEvicted.Inc()
				over--
				continue
			}
			kept = append(kept, id)
		}
		st.order = kept
	}
}

// list snapshots every retained job in creation order.
func (st *jobStore) list() []JobStatus {
	st.mu.Lock()
	ids := append([]string(nil), st.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j := st.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	st.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status(false)
	}
	return out
}

// drain blocks until every active job finishes or ctx expires; stragglers
// are then canceled and awaited. Returns how many jobs were force-canceled.
func (st *jobStore) drain(ctx context.Context) int {
	st.mu.Lock()
	var live []*job
	for _, j := range st.jobs {
		if !j.finished.Load() {
			live = append(live, j)
		}
	}
	st.mu.Unlock()

	forced := 0
	for _, j := range live {
		select {
		case <-j.handle.Done():
		case <-ctx.Done():
			j.canceled.Store(true)
			j.handle.Cancel(errors.New("server draining"))
			forced++
			<-j.handle.Done()
		}
	}
	return forced
}

// handleJobSubmit is POST /v1/jobs.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, errf(http.StatusServiceUnavailable, CodeUnavailable, "server is draining"))
		return
	}
	var req JobRequest
	if err := s.decodeRequest(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	j, err := s.jobs.submit(&req, span.FromContext(r.Context()))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status(false))
}

// handleJobStatus is GET /v1/jobs/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, errf(http.StatusNotFound, CodeNotFound, "unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

// handleJobList is GET /v1/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

// handleJobCancel is DELETE /v1/jobs/{id}. Canceling a finished job is a
// no-op that reports the final state, so retries are harmless.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, errf(http.StatusNotFound, CodeNotFound, "unknown job %q", r.PathValue("id")))
		return
	}
	if _, _, done := j.handle.Poll(); !done {
		j.canceled.Store(true)
		j.handle.Cancel(errors.New("canceled by client"))
	}
	writeJSON(w, http.StatusOK, j.status(false))
}
