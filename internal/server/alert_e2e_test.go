package server

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/flight"
	"repro/internal/obs/tsdb"
)

// nextAlertFrame reads one alert frame off the stream without touching the
// testing.T (it runs on a non-test goroutine); ok=false means the stream
// ended. Non-alert frames are skipped.
func nextAlertFrame(r *sseReader) (map[string]any, bool) {
	var kind, data string
	for r.sc.Scan() {
		line := r.sc.Text()
		switch {
		case line == "":
			if kind == "" && data == "" {
				continue
			}
			var ev obs.StreamEvent
			if err := json.Unmarshal([]byte(data), &ev); err == nil && kind == "alert" {
				return ev.Data, true
			}
			kind, data = "", ""
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	return nil, false
}

// TestWorkerDeathAlertAndFlightCapsule is the acceptance test of the whole
// observability chain: a cluster worker dies mid-sweep and, with no test
// code polling any internal state, the coordinator's own machinery must
//
//  1. notice — the worker-absent rule walks pending → firing → resolved,
//     observed purely through the public SSE firehose;
//  2. preserve the evidence — a flight capsule exists at /debug/flightz
//     containing the dead worker's heartbeat series and the partition
//     retry span tree, and its on-disk copy survives.
//
// Everything is time-compressed: millisecond heartbeats, a 25ms sampling
// step and a sub-second alert lifecycle.
func TestWorkerDeathAlertAndFlightCapsule(t *testing.T) {
	flightDir := t.TempDir()
	coord := New(Config{
		Cluster: &cluster.Options{
			HeartbeatEvery:   10 * time.Millisecond,
			HeartbeatTimeout: 40 * time.Millisecond,
		},
		TSDBStep:   25 * time.Millisecond,
		AlertEvery: 25 * time.Millisecond,
		FlightDir:  flightDir,
		Rules: []alert.Rule{{
			Name: "worker-absent", Severity: "page", Kind: "threshold",
			Metric: `cluster_workers{state="lost"}`, Func: "last",
			Op: ">=", Value: 1,
			WindowSeconds: 1, ForSeconds: 0.05, KeepSeconds: 0.05,
			Detail: "a joined worker stopped heartbeating",
		}},
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// The only observation channel this test allows itself: alert frames
	// off the public firehose, opened before anything goes wrong.
	sse, resp := openSSE(t, srv.URL+"/v1/stream?kind=alert")
	defer resp.Body.Close()

	// One worker joins with a listener that is already gone, so every
	// partition dispatched to it fails and is retried — the same signal a
	// crashed process produces. Its heartbeats continue until the first
	// retry is on the books (guaranteeing the sweep really reached it),
	// then stop: the crash.
	worker := httptest.NewServer(New(Config{}).Handler())
	coord.Coordinator().Join(cluster.JoinRequest{ID: "w1", Addr: worker.URL})
	worker.Close()
	beatStop := make(chan struct{})
	beatDone := make(chan struct{})
	go func() {
		defer close(beatDone)
		for {
			select {
			case <-beatStop:
				return
			case <-time.After(5 * time.Millisecond):
				coord.Coordinator().Heartbeat("w1")
			}
		}
	}()

	// A seeded sweep submitted while the dead worker still counts as
	// alive: its chunks are dispatched to w1, fail, and fall back local.
	rec := do(t, coord.Handler(), "POST", "/v1/jobs", quickJob())
	if rec.Code != 202 {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
	}
	jobID := decode[JobStatus](t, rec).ID

	retryDeadline := time.Now().Add(10 * time.Second)
	for coord.Registry().Snapshot()["cluster_partition_retries_total"] == 0 {
		if time.Now().After(retryDeadline) {
			t.Fatal("no partition was ever dispatched to the doomed worker")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(beatStop)
	<-beatDone

	// The rule lifecycle, exactly as the SSE client tells it. Resolution
	// needs the lost gauge back at zero, so once firing arrives the dead
	// worker is administratively removed (lost → left). The reader
	// goroutine parses frames itself (no testing.T calls off the test
	// goroutine) and exits when the response body is closed.
	var states []string
	deadline := time.After(15 * time.Second)
	frames := make(chan map[string]any, 16)
	go func() {
		for {
			data, ok := nextAlertFrame(sse)
			if !ok {
				return
			}
			if data["rule"] == "worker-absent" {
				select {
				case frames <- data:
				default:
				}
			}
		}
	}()
	for len(states) == 0 || states[len(states)-1] != "resolved" {
		select {
		case data := <-frames:
			state, _ := data["state"].(string)
			states = append(states, state)
			if state == "firing" {
				coord.Coordinator().Leave("w1")
			}
		case <-deadline:
			t.Fatalf("alert lifecycle incomplete after 15s: %v", states)
		}
	}
	if want := []string{"pending", "firing", "resolved"}; len(states) != len(want) ||
		states[0] != want[0] || states[1] != want[1] || states[2] != want[2] {
		t.Fatalf("worker-absent lifecycle = %v, want %v", states, want)
	}

	st := pollJob(t, coord.Handler(), jobID)
	if st.State != "done" {
		t.Fatalf("sweep ended %q (%s) despite local fallback", st.State, st.Error)
	}
	if coord.Registry().Snapshot()["cluster_partition_retries_total"] == 0 {
		t.Fatal("dead worker caused no partition retries")
	}

	// The flight capsule: captured at the pending→firing edge, served over
	// the debug surface, carrying the worker's heartbeat series and the
	// failed partition spans.
	lst := decode[struct {
		Capsules []flight.Info `json:"capsules"`
	}](t, do(t, coord.DebugHandler(), "GET", "/debug/flightz", nil))
	var capID string
	for _, info := range lst.Capsules {
		if info.Rule == "worker-absent" && info.State == "firing" {
			capID = info.ID
		}
	}
	if capID == "" {
		t.Fatalf("no worker-absent capsule in %+v", lst.Capsules)
	}
	capsule := decode[flight.Capsule](t, do(t, coord.DebugHandler(), "GET", "/debug/flightz/"+capID, nil))

	beatSeries := false
	for name := range capsule.Series {
		if strings.Contains(name, `worker="w1"`) &&
			(strings.Contains(name, "cluster_worker_beat_age_seconds") ||
				strings.Contains(name, "cluster_worker_up")) {
			beatSeries = true
		}
	}
	if !beatSeries {
		t.Fatalf("capsule lacks w1's heartbeat series, has %v", capsule.SeriesNames())
	}
	retrySpan := false
	for _, sp := range capsule.Spans {
		if strings.HasPrefix(sp.Name, "cluster.partition[") && sp.Status != "" {
			retrySpan = true
		}
	}
	if !retrySpan {
		names := make([]string, 0, len(capsule.Spans))
		for _, sp := range capsule.Spans {
			names = append(names, sp.Name+"/"+sp.Status)
		}
		t.Fatalf("capsule lacks a failed partition span, has %v", names)
	}

	// The on-disk copy round-trips to the same capsule.
	raw, err := os.ReadFile(filepath.Join(flightDir, capID+".json"))
	if err != nil {
		t.Fatalf("persisted capsule: %v", err)
	}
	var disk flight.Capsule
	if err := json.Unmarshal(raw, &disk); err != nil {
		t.Fatalf("persisted capsule JSON: %v", err)
	}
	if disk.ID != capID || disk.Trigger.Rule != "worker-absent" || len(disk.Series) != len(capsule.Series) {
		t.Fatalf("disk capsule %s/%s differs from served capsule %s", disk.ID, disk.Trigger.Rule, capID)
	}

	// tsdb stays alive behind all of it.
	var stats tsdb.Stats
	if coord.TSDB() != nil {
		stats = coord.TSDB().DBStats()
	}
	if stats.Series == 0 || stats.Ticks == 0 {
		t.Fatalf("tsdb idle during the incident: %+v", stats)
	}
}
