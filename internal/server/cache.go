package server

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// lruCache is a bounded map with least-recently-used eviction, instrumented
// with hit/miss counters. The server keeps two: compiled networks keyed by
// the hash of their source text, and finished deterministic responses keyed
// by the canonical request hash. A nil *lruCache (caching disabled) is a
// valid always-miss, never-store cache, so call sites need no branching.
type lruCache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List               // front = most recently used
	items  map[string]*list.Element // key -> element whose Value is *lruEntry
	hits   *obs.Counter
	misses *obs.Counter
}

type lruEntry struct {
	key string
	val any
}

// newLRU builds a cache holding at most max entries, reporting hits and
// misses as cache_{hits,misses}_total{cache=<name>} in reg. max <= 0 returns
// nil: a disabled cache.
func newLRU(max int, name string, reg *obs.Registry) *lruCache {
	if max <= 0 {
		return nil
	}
	return &lruCache{
		max:    max,
		ll:     list.New(),
		items:  make(map[string]*list.Element, max),
		hits:   reg.Counter(obs.Label("cache_hits_total", "cache", name)),
		misses: reg.Counter(obs.Label("cache_misses_total", "cache", name)),
	}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*lruEntry).val, true
}

// add inserts or refreshes a key, evicting the least recently used entry
// when the cache is full.
func (c *lruCache) add(key string, val any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len returns the current entry count (0 for a disabled cache).
func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
