// The DAC paper's flagship DSP workload: a moving-average filter computed by
// a clocked molecular circuit. The signal-flow graph is compiled onto
// molecular registers and compute reactions, driven by the molecular clock,
// and validated cycle-by-cycle against the exact digital filter.
//
//	go run ./examples/movingavg
package main

import (
	"fmt"
	"log"

	"repro/internal/sfg"
	"repro/internal/sim"
	"repro/internal/synth"
)

func main() {
	g, err := sfg.MovingAverage(2)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := synth.Compile(g, "f")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled y[k] = (x[k]+x[k-1])/2 into %d species, %d reactions (plus one molecular clock)\n",
		cp.Circuit.Net.NumSpecies(), cp.Circuit.Net.NumReactions())

	x := []float64{1, 1, 0, 2, 1, 0.5, 1.5, 1}
	golden, err := g.Run(map[string][]float64{"x": x})
	if err != nil {
		log.Fatal(err)
	}
	tr, outs, err := cp.Run(sim.Rates{Fast: 1000, Slow: 1}, 420, map[string][]float64{"x": x}, len(x))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncycle   x[k]   golden   molecular")
	for k := range x {
		fmt.Printf("%5d  %5.2f  %7.4f  %9.4f\n", k, x[k], golden["y"][k], outs["y"][k])
	}

	plot, err := tr.ASCIIPlot(100, 12, cp.OutSinks["y"], cp.Circuit.Clock.R)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naccumulated output vs the clock's red phase:")
	fmt.Print(plot)
}
