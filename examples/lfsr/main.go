// A 4-bit maximal-length LFSR in molecules: pseudo-random sequence
// generation as a synchronous molecular circuit — the natural companion to
// the paper's counter example (same register + gate machinery, feedback
// through XOR taps).
//
//	go run ./examples/lfsr
package main

import (
	"fmt"
	"log"

	"repro/internal/logic"
	"repro/internal/sim"
)

func main() {
	fsm, err := logic.LFSR(4, []int{4, 3})
	if err != nil {
		log.Fatal(err)
	}
	m, err := logic.Compile(fsm, "lfsr")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled a 4-bit LFSR (taps 4,3 — maximal length 15) into %d species, %d reactions\n",
		m.Circuit.Net.NumSpecies(), m.Circuit.Net.NumReactions())

	tr, err := m.Run(sim.Rates{Fast: 300, Slow: 1}, 420)
	if err != nil {
		log.Fatal(err)
	}
	states, err := m.StateUints(tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncycle  molecular state  expected")
	st := fsm.InitState()
	ok := true
	for k, got := range states {
		want := fsm.StateUint(st)
		mark := ""
		if got != want {
			mark = "  <-- mismatch"
			ok = false
		}
		fmt.Printf("%5d  %15b  %8b%s\n", k, got, want, mark)
		st = fsm.Step(st)
	}
	if ok {
		fmt.Println("\nthe molecular register chain tracked the pseudo-random sequence exactly")
	}
}
