// From spec to molecules: a 2-bit Gray-code counter written in the circuit
// specification language, compiled to a clocked molecular circuit, simulated
// and decoded against the golden state machine.
//
//	go run ./examples/grayspec
package main

import (
	"fmt"
	"log"

	"repro/internal/logic"
	"repro/internal/sim"
	"repro/internal/spec"
)

const graySpec = `
# 2-bit Gray code: 00 01 11 10 00 ...
kind fsm
bit g0 init 0 next !g1
bit g1 init 0 next g0
`

func main() {
	sp, err := spec.ParseString(graySpec)
	if err != nil {
		log.Fatal(err)
	}
	m, err := logic.Compile(sp.FSM, "gray")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec -> %d species, %d reactions\n",
		m.Circuit.Net.NumSpecies(), m.Circuit.Net.NumReactions())

	tr, err := m.Run(sim.Rates{Fast: 300, Slow: 1}, 350)
	if err != nil {
		log.Fatal(err)
	}
	states, err := m.StatesPerCycle(tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncycle  molecular  golden")
	st := sp.FSM.InitState()
	ok := true
	for k, got := range states {
		mol := sp.FSM.StateString(got)
		want := sp.FSM.StateString(st)
		mark := ""
		if mol != want {
			mark = "  <-- mismatch"
			ok = false
		}
		fmt.Printf("%5d  %9s  %6s%s\n", k, mol, want, mark)
		st = sp.FSM.Step(st)
	}
	if ok {
		fmt.Println("\nevery cycle of the Gray sequence decoded correctly; successive codes")
		fmt.Println("differ in exactly one molecular register pair, as Gray codes should")
	}
}
