// The iterative rate-independent multiplier: Z = X·Y computed by a one-unit
// token looping through the tri-phase discipline, removing one unit of Y and
// depositing one copy of X per lap — the Senum–Riedel-style construct the
// paper's combinational layer builds on.
//
//	go run ./examples/multiplier
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/crn"
	"repro/internal/modules"
	"repro/internal/sim"
)

func main() {
	fmt.Println("Z = X · Y by molecular iteration (Y integer units):")
	fmt.Println("    X    Y   computed Z   exact")
	for _, c := range []struct {
		x float64
		y float64
	}{
		{0.8, 3}, {1.5, 2}, {0.5, 5}, {1.0, 0},
	} {
		net := crn.NewNetwork()
		if err := net.SetInit("X", c.x); err != nil {
			log.Fatal(err)
		}
		if err := net.SetInit("Y", c.y); err != nil {
			log.Fatal(err)
		}
		if _, err := modules.Multiply(net, "mul", "X", "Y", "Z"); err != nil {
			log.Fatal(err)
		}
		tr, err := sim.Run(context.Background(), net, sim.Config{
			Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 120 + 90*c.y,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.2f  %3.0f  %10.4f  %6.2f\n", c.x, c.y, tr.Final("Z"), c.x*c.y)
	}
	fmt.Println("\neach product took Y clockless laps of the token; the answer depends on")
	fmt.Println("the quantities only, never on the rate constants")
}
