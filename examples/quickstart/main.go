// Quickstart: build the companion abstract's two-delay-element chain, push
// one quantity through it, and watch the crisp tri-phase hand-off — the
// "hello world" of molecular sequential computation.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/async"
	"repro/internal/crn"
	"repro/internal/sim"
)

func main() {
	// A chain of two delay elements: X = B0 enters, Y = R3 leaves.
	net := crn.NewNetwork()
	chain, err := async.NewChain(net, "d", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d species, %d reactions (all from the abstract's reactions (1)-(6))\n",
		net.NumSpecies(), net.NumReactions())

	// Place one unit of signal at the input and simulate the mass-action
	// kinetics with the paper's rate dichotomy: fast = 1000 × slow.
	if err := net.SetInit(chain.Input, 1.0); err != nil {
		log.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), net, sim.Config{Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 150})
	if err != nil {
		log.Fatal(err)
	}

	plot, err := tr.ASCIIPlot(100, 14, chain.Input, chain.R(1), chain.G(1), chain.B(1), chain.R(2), chain.Output)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plot)

	lat, err := chain.Latency(tr, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninput value 1.0 arrived at the output as %.4f after %.1f time units\n",
		tr.Final(chain.Output), lat)
	fmt.Println("every hand-off waited for the previous colour class to empty — no rate tuning anywhere")
}
