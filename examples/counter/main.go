// The paper's sequential FSM example: a 3-bit binary counter whose state
// lives in dual-rail molecular registers and whose increment logic is a
// cascade of bimolecular gate pairings, all clocked by the molecular clock.
//
//	go run ./examples/counter
package main

import (
	"fmt"
	"log"

	"repro/internal/logic"
	"repro/internal/sim"
)

func main() {
	fsm, err := logic.Counter(3)
	if err != nil {
		log.Fatal(err)
	}
	m, err := logic.Compile(fsm, "cnt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled a 3-bit counter into %d species, %d reactions\n",
		m.Circuit.Net.NumSpecies(), m.Circuit.Net.NumReactions())

	tr, err := m.Run(sim.Rates{Fast: 300, Slow: 1}, 420)
	if err != nil {
		log.Fatal(err)
	}
	states, err := m.StateUints(tr)
	if err != nil {
		log.Fatal(err)
	}
	margin, err := m.RailMargin(tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncycle  molecular  expected")
	st := fsm.InitState()
	for k, got := range states {
		fmt.Printf("%5d  %9d  %8d\n", k, got, fsm.StateUint(st))
		st = fsm.Step(st)
	}
	fmt.Printf("\nworst dual-rail decoding margin: %.3f (1.0 = perfect)\n", margin)
	fmt.Println("each count lives as one concentration unit on the true/false rail of each bit")
}
