// Self-timed pipelines at several depths: how the companion abstract's
// handshaking scheme scales, and what its one-shot nature means. Also shows
// rate-category robustness: the same chain run at three different fast/slow
// ratios transfers the same value.
//
//	go run ./examples/asyncpipeline
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/async"
	"repro/internal/crn"
	"repro/internal/sim"
)

func main() {
	fmt.Println("depth scaling (kfast/kslow = 500, one-shot X = 1.0):")
	fmt.Println("  n  species  reactions  latency    Y")
	for _, n := range []int{1, 2, 4, 8} {
		net := crn.NewNetwork()
		chain, err := async.NewChain(net, "d", n)
		if err != nil {
			log.Fatal(err)
		}
		if err := net.SetInit(chain.Input, 1); err != nil {
			log.Fatal(err)
		}
		tr, err := sim.Run(context.Background(), net, sim.Config{Rates: sim.Rates{Fast: 500, Slow: 1}, TEnd: 60 * float64(n)})
		if err != nil {
			log.Fatal(err)
		}
		lat, err := chain.Latency(tr, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d  %7d  %9d  %7.1f  %.4f\n",
			n, net.NumSpecies(), net.NumReactions(), lat, tr.Final(chain.Output))
	}

	fmt.Println("\nrate-category robustness (2-element chain, X = 1.0):")
	fmt.Println("  kfast/kslow     Y")
	for _, ratio := range []float64{100, 400, 1600} {
		net := crn.NewNetwork()
		chain, err := async.NewChain(net, "d", 2)
		if err != nil {
			log.Fatal(err)
		}
		if err := net.SetInit(chain.Input, 1); err != nil {
			log.Fatal(err)
		}
		tr, err := sim.Run(context.Background(), net, sim.Config{Rates: sim.Rates{Fast: ratio, Slow: 1}, TEnd: 200})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %11.0f  %.4f\n", ratio, tr.Final(chain.Output))
	}
	fmt.Println("\nthe computed value does not depend on the rates — only on fast >> slow")
}
