// DNA strand displacement as the experimental chassis: compile a delay
// element to the Soloveichik-style DSD implementation and compare it against
// the ideal chemistry at two fuel excesses.
//
//	go run ./examples/dsdfilter
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/async"
	"repro/internal/crn"
	"repro/internal/dsd"
	"repro/internal/sim"
)

func main() {
	rates := sim.Rates{Fast: 20, Slow: 1}

	ideal := crn.NewNetwork()
	chain, err := async.NewChain(ideal, "d", 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := ideal.SetInit(chain.Input, 1); err != nil {
		log.Fatal(err)
	}
	trIdeal, err := sim.Run(context.Background(), ideal, sim.Config{Rates: rates, TEnd: 250})
	if err != nil {
		log.Fatal(err)
	}
	yIdeal := trIdeal.Final(chain.Output)
	fmt.Printf("ideal delay element: %d species, %d reactions, Y = %.4f\n",
		ideal.NumSpecies(), ideal.NumReactions(), yIdeal)

	for _, cmax := range []float64{5, 25} {
		impl, st, err := dsd.Compile(ideal, dsd.Options{Rates: rates, Cmax: cmax, QmaxFactor: 5})
		if err != nil {
			log.Fatal(err)
		}
		trImpl, err := sim.Run(context.Background(), impl, sim.Config{Rates: rates, TEnd: 250})
		if err != nil {
			log.Fatal(err)
		}
		y := trImpl.Final(chain.Output)
		fmt.Printf("DSD at Cmax=%-3.0f: %d species, %d reactions, %d fuel complexes, Y = %.4f (|Δ| = %.4f)\n",
			cmax, st.SpeciesAfter, st.ReactionsAfter, st.Fuels, y, math.Abs(y-yIdeal))
	}
	fmt.Println("\nmore fuel excess -> closer to the ideal kinetics; every step is at most bimolecular,")
	fmt.Println("which is what a DNA strand-displacement realization requires")
}
